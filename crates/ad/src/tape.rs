//! The Wengert list (tape) and its recording session.
//!
//! The tape is an append-only record of every tracked arithmetic operation
//! executed by the program between the checkpoint boundary and the output.
//! Checkpointed elements enter as *leaves*; a reverse sweep (see
//! [`crate::sweep`]) then computes `∂output/∂leaf` for all leaves at once —
//! the quantity the paper uses to classify elements as critical (non-zero)
//! or uncritical (zero).
//!
//! Storage is **segmented** ([`crate::segment`]): fixed-size arenas that
//! never reallocate, `u64` node ids with segment-local indexing, and a
//! typed [`AdError`] instead of a panic when the recording budget is
//! exhausted. The segments are also the unit of parallelism for the
//! reverse sweeps — and of *eviction* under a [`TapeCheckpointConfig`],
//! where interior segments are discarded during recording and re-recorded
//! on demand through the `*_replay` sweep entry points
//! ([`crate::replay`]).

use crate::datadep::{self, DataDep};
use crate::error::AdError;
use crate::replay::{ReplayCtx, ReplaySink, TapeReplay};
use crate::segment::{
    SegmentStore, TapeCheckpointConfig, DEFAULT_NODE_LIMIT, DEFAULT_SEGMENT_LEN, NODE_BYTES,
};
use crate::sweep::{self, Gradient, SweepConfig, SweepStats};
use scrutiny_obs::Recorder;
use std::cell::RefCell;

pub(crate) use crate::segment::NONE;

/// Construction parameters for a [`Tape`].
#[derive(Clone, Copy, Debug)]
pub struct TapeConfig {
    /// Nodes to pre-reserve spine room for. Segments themselves are
    /// allocated on demand and never copied, so this is a soft hint (it
    /// avoids growing the small segment-pointer vector), not the hard
    /// reallocation cliff it was for the seed's contiguous tape.
    pub capacity: usize,
    /// Nodes per segment; rounded up to a power of two in `[8, 2^31]`.
    /// Smaller segments expose more sweep parallelism (and are used by the
    /// boundary tests); the default keeps per-segment overhead negligible.
    pub segment_len: usize,
    /// Recording budget in nodes. Exceeding it poisons the tape with
    /// [`AdError::TapeOverflow`] instead of aborting the run.
    pub node_limit: u64,
    /// Bounded-residency policy: keep at most `ncheckpoints` segments in
    /// memory, evicting the rest to digests that are re-recorded on
    /// demand during sweeps. `None` (the default) keeps every segment
    /// resident; a checkpointed tape must be swept through the
    /// `*_replay` entry points.
    pub checkpoint: Option<TapeCheckpointConfig>,
}

impl Default for TapeConfig {
    fn default() -> Self {
        TapeConfig {
            capacity: 1024,
            segment_len: DEFAULT_SEGMENT_LEN,
            node_limit: DEFAULT_NODE_LIMIT,
            checkpoint: None,
        }
    }
}

/// A recorded computation graph in segmented structure-of-arrays layout.
///
/// Node `i` has up to two parents `p1[i], p2[i]` with local partial
/// derivatives `d1[i], d2[i]` (computed when the node was recorded).
/// Leaves have no parents. 32 bytes per node; values are *not* stored
/// because the reverse sweep only needs partials.
pub struct Tape {
    store: SegmentStore,
    leaves: usize,
}

impl Default for Tape {
    fn default() -> Self {
        Tape::with_config(TapeConfig::default())
    }
}

impl Tape {
    /// Create an empty tape with spine room reserved for `capacity` nodes.
    pub fn with_capacity(capacity: usize) -> Self {
        Tape::with_config(TapeConfig {
            capacity,
            ..TapeConfig::default()
        })
    }

    /// Create an empty tape with explicit segmentation and budget.
    pub fn with_config(cfg: TapeConfig) -> Self {
        Tape {
            store: SegmentStore::new(
                cfg.capacity,
                cfg.segment_len,
                cfg.node_limit,
                cfg.checkpoint,
            ),
            leaves: 0,
        }
    }

    /// Number of recorded nodes (leaves included).
    pub fn len(&self) -> usize {
        self.store.len() as usize
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.store.len() == 0
    }

    /// Number of leaf (input) nodes registered on this tape.
    pub fn leaf_count(&self) -> usize {
        self.leaves
    }

    /// Nodes per segment (a power of two).
    pub fn segment_len(&self) -> usize {
        self.store.segment_len()
    }

    /// Segments recorded (resident and evicted alike).
    pub fn segment_count(&self) -> usize {
        self.store.seg_count()
    }

    /// The recording budget this tape was configured with.
    pub fn node_limit(&self) -> u64 {
        self.store.limit()
    }

    /// The bounded-residency policy this tape records under, if any.
    pub fn checkpoint(&self) -> Option<TapeCheckpointConfig> {
        self.store.checkpoint()
    }

    /// Arena bytes currently resident. Without a checkpoint policy this
    /// equals the full allocated footprint; under one, evicted segments
    /// are not counted (their memory is freed).
    pub fn resident_bytes(&self) -> usize {
        self.store.resident_bytes()
    }

    /// High-water mark of [`Tape::resident_bytes`] over the tape's
    /// lifetime — recording *and* every sweep/replay so far. The
    /// measurable form of the bounded-memory guarantee.
    pub fn peak_resident_bytes(&self) -> usize {
        self.store.peak_resident_bytes()
    }

    /// True once recording was dropped because the budget was exhausted.
    /// Every sweep on a poisoned tape fails with
    /// [`AdError::TapeOverflow`].
    pub fn overflowed(&self) -> bool {
        self.store.overflowed()
    }

    pub(crate) fn store(&self) -> &SegmentStore {
        &self.store
    }

    /// Seal the open recording segment into the sweepable slot table.
    /// Called by [`TapeSession::finish`]; idempotent.
    pub(crate) fn seal(&mut self) {
        self.store.seal_open();
    }

    /// Size and composition counters, for memory accounting in reports.
    pub fn stats(&self) -> TapeStats {
        let nodes = self.len();
        TapeStats {
            nodes,
            leaves: self.leaves,
            segments: self.segment_count(),
            segment_len: self.segment_len(),
            bytes: self.store.total_bytes(),
            resident_bytes: self.store.resident_bytes(),
            peak_resident_bytes: self.store.peak_resident_bytes(),
            evicted_segments: self.store.evicted_count(),
            replayed_segments: self.store.replayed_total(),
            sweep_bytes: nodes * 8 + nodes.div_ceil(8),
        }
    }

    /// Append a node. Returns [`NONE`] once the budget is exhausted — the
    /// caller's `Adj` then folds to a constant and the poisoning surfaces
    /// as a typed error at sweep time, not as an abort mid-record.
    #[inline]
    pub(crate) fn push(&mut self, p1: u64, d1: f64, p2: u64, d2: f64) -> u64 {
        self.store.push(p1, d1, p2, d2)
    }

    #[inline]
    pub(crate) fn push_leaf(&mut self) -> u64 {
        let idx = self.push(NONE, 0.0, NONE, 0.0);
        if idx != NONE {
            self.leaves += 1;
        }
        idx
    }

    // ---- sweeps ----------------------------------------------------------

    /// Reverse (adjoint) sweep: derivative of the node `output` with
    /// respect to every node on the tape. Chooses the parallel sweep when
    /// segments and cores allow; results are bit-identical either way.
    ///
    /// A constant output (an [`crate::Adj`] that never touched the tape)
    /// yields an all-zero gradient: nothing influenced it. A poisoned
    /// (overflowed) tape yields [`AdError::TapeOverflow`]; a checkpointed
    /// tape with evicted segments yields [`AdError::SegmentEvicted`]
    /// (use [`Tape::gradient_sweep_replay`]).
    pub fn gradient(&self, output: crate::Adj) -> Result<Gradient, AdError> {
        self.gradient_sweep(output, SweepConfig::default())
            .map(|(g, _)| g)
    }

    /// Reverse sweep seeded at an explicit node index.
    pub fn gradient_of(&self, output: u64) -> Result<Gradient, AdError> {
        sweep::gradient_auto(self, output, SweepConfig::default(), &ReplayCtx::none())
            .map(|(g, _)| g)
    }

    /// Reverse sweep with an explicit [`SweepConfig`], also reporting
    /// [`SweepStats`] (segments visited, threads, frontier traffic).
    pub fn gradient_sweep(
        &self,
        output: crate::Adj,
        cfg: SweepConfig,
    ) -> Result<(Gradient, SweepStats), AdError> {
        self.gradient_sweep_ctx(output, cfg, &ReplayCtx::none())
    }

    /// [`Tape::gradient_sweep`] on a checkpointed tape: evicted segments
    /// are re-recorded on demand by `replay` (which must deterministically
    /// repeat the recorded computation), keeping residency within the
    /// [`TapeCheckpointConfig`] budget. Bit-identical to the unbounded
    /// sweep; a diverging replay is [`AdError::ReplayDivergence`].
    pub fn gradient_sweep_replay(
        &self,
        output: crate::Adj,
        cfg: SweepConfig,
        replay: &dyn TapeReplay,
    ) -> Result<(Gradient, SweepStats), AdError> {
        self.gradient_sweep_ctx(output, cfg, &ReplayCtx::new(replay, Recorder::disabled()))
    }

    fn gradient_sweep_ctx(
        &self,
        output: crate::Adj,
        cfg: SweepConfig,
        ctx: &ReplayCtx<'_>,
    ) -> Result<(Gradient, SweepStats), AdError> {
        match output.index() {
            Some(idx) => sweep::gradient_auto(self, idx, cfg, ctx),
            None => {
                if self.overflowed() {
                    return Err(AdError::TapeOverflow {
                        limit: self.node_limit(),
                    });
                }
                Ok((
                    Gradient {
                        adj: vec![0.0; self.len()],
                    },
                    sweep::constant_stats(),
                ))
            }
        }
    }

    /// Serial reverse sweep (the seed algorithm); the reference the
    /// property suite compares the parallel sweep against.
    pub fn gradient_serial(&self, output: crate::Adj) -> Result<Gradient, AdError> {
        self.gradient_sweep(output, SweepConfig::serial())
            .map(|(g, _)| g)
    }

    /// Structural activity sweep: marks every node from which a data-flow
    /// path reaches `output`, ignoring partial-derivative *values*.
    ///
    /// This over-approximates [`Tape::gradient`]-based criticality: a node
    /// whose derivative cancels to exactly zero (e.g. `x - x`, or a
    /// multiplication by a tracked zero) is still structurally reachable.
    /// The paper's discussion section hopes for such an "algorithmic
    /// analysis"; the ablation benches quantify how often the two differ.
    pub fn reachable(&self, output: crate::Adj) -> Result<Vec<bool>, AdError> {
        self.reachable_sweep(output, SweepConfig::default())
            .map(|(r, _)| r)
    }

    /// Structural sweep seeded at an explicit node index.
    pub fn reachable_of(&self, output: u64) -> Result<Vec<bool>, AdError> {
        sweep::reachable_auto(self, output, SweepConfig::default(), &ReplayCtx::none())
            .map(|(r, _)| r)
    }

    /// Structural sweep with an explicit [`SweepConfig`] and stats.
    pub fn reachable_sweep(
        &self,
        output: crate::Adj,
        cfg: SweepConfig,
    ) -> Result<(Vec<bool>, SweepStats), AdError> {
        self.reachable_sweep_ctx(output, cfg, &ReplayCtx::none())
    }

    /// [`Tape::reachable_sweep`] on a checkpointed tape, re-recording
    /// evicted segments through `replay`. See
    /// [`Tape::gradient_sweep_replay`] for the contract.
    pub fn reachable_sweep_replay(
        &self,
        output: crate::Adj,
        cfg: SweepConfig,
        replay: &dyn TapeReplay,
    ) -> Result<(Vec<bool>, SweepStats), AdError> {
        self.reachable_sweep_ctx(output, cfg, &ReplayCtx::new(replay, Recorder::disabled()))
    }

    fn reachable_sweep_ctx(
        &self,
        output: crate::Adj,
        cfg: SweepConfig,
        ctx: &ReplayCtx<'_>,
    ) -> Result<(Vec<bool>, SweepStats), AdError> {
        match output.index() {
            Some(idx) => sweep::reachable_auto(self, idx, cfg, ctx),
            None => {
                if self.overflowed() {
                    return Err(AdError::TapeOverflow {
                        limit: self.node_limit(),
                    });
                }
                Ok((vec![false; self.len()], sweep::constant_stats()))
            }
        }
    }

    /// Serial structural sweep (the seed algorithm).
    pub fn reachable_serial(&self, output: crate::Adj) -> Result<Vec<bool>, AdError> {
        self.reachable_sweep(output, SweepConfig::serial())
            .map(|(r, _)| r)
    }

    /// Static data-dependency analysis ([`crate::datadep`]): structural
    /// liveness plus def-use bits and witness-path extraction, never
    /// touching adjoint values. The AutoCheck-style second analyzer the
    /// differential harness cross-checks [`Tape::gradient`] against.
    ///
    /// Same error contract as the sweeps: a constant output yields an
    /// all-dead result, a poisoned tape [`AdError::TapeOverflow`].
    pub fn datadep(&self, output: crate::Adj) -> Result<DataDep, AdError> {
        self.datadep_sweep(output, SweepConfig::default())
    }

    /// Data-dependency analysis with an explicit [`SweepConfig`].
    pub fn datadep_sweep(&self, output: crate::Adj, cfg: SweepConfig) -> Result<DataDep, AdError> {
        datadep::analyze(self, output.index(), cfg, &ReplayCtx::none())
    }

    /// [`Tape::datadep_sweep`] on a checkpointed tape, re-recording
    /// evicted segments through `replay` (the forward def-use pass and
    /// the reverse liveness sweep both stay within the residency budget).
    pub fn datadep_sweep_replay(
        &self,
        output: crate::Adj,
        cfg: SweepConfig,
        replay: &dyn TapeReplay,
    ) -> Result<DataDep, AdError> {
        datadep::analyze(
            self,
            output.index(),
            cfg,
            &ReplayCtx::new(replay, Recorder::disabled()),
        )
    }

    /// Data-dependency analysis seeded at an explicit node index.
    pub fn datadep_of(&self, output: u64, cfg: SweepConfig) -> Result<DataDep, AdError> {
        datadep::analyze(self, Some(output), cfg, &ReplayCtx::none())
    }

    // ----- observed sweeps -------------------------------------------
    //
    // The `_observed` variants wrap the sweep in an obs span
    // (`ad.sweep.<kind>`, with tape shape fields) and export the
    // resulting [`SweepStats`] as gauges via [`SweepStats::emit`], so the
    // analysis layer can derive its report from the recorder instead of
    // plumbing the struct through by hand. With a disabled recorder they
    // are exactly the plain sweeps. The `_replay_observed` variants
    // additionally report each re-recording as an `ad.replay` span.

    /// [`Tape::gradient_sweep`] reporting through an obs recorder
    /// (span `ad.sweep.value`, gauges `ad.sweep.value.*`).
    pub fn gradient_sweep_observed(
        &self,
        output: crate::Adj,
        cfg: SweepConfig,
        rec: &Recorder,
    ) -> Result<(Gradient, SweepStats), AdError> {
        let shape = self.stats();
        let _span = scrutiny_obs::span!(
            rec,
            "ad.sweep.value",
            nodes = shape.nodes,
            segments = shape.segments
        );
        let (gradient, stats) = self.gradient_sweep(output, cfg)?;
        stats.emit(rec, "value");
        Ok((gradient, stats))
    }

    /// [`Tape::gradient_sweep_replay`] reporting through an obs recorder:
    /// the sweep span plus one `ad.replay` span per re-recorded window.
    pub fn gradient_sweep_replay_observed(
        &self,
        output: crate::Adj,
        cfg: SweepConfig,
        replay: &dyn TapeReplay,
        rec: &Recorder,
    ) -> Result<(Gradient, SweepStats), AdError> {
        let shape = self.stats();
        let _span = scrutiny_obs::span!(
            rec,
            "ad.sweep.value",
            nodes = shape.nodes,
            segments = shape.segments
        );
        let ctx = ReplayCtx::new(replay, rec.clone());
        let (gradient, stats) = self.gradient_sweep_ctx(output, cfg, &ctx)?;
        stats.emit(rec, "value");
        Ok((gradient, stats))
    }

    /// [`Tape::reachable_sweep`] reporting through an obs recorder
    /// (span `ad.sweep.reach`, gauges `ad.sweep.reach.*`).
    pub fn reachable_sweep_observed(
        &self,
        output: crate::Adj,
        cfg: SweepConfig,
        rec: &Recorder,
    ) -> Result<(Vec<bool>, SweepStats), AdError> {
        let shape = self.stats();
        let _span = scrutiny_obs::span!(
            rec,
            "ad.sweep.reach",
            nodes = shape.nodes,
            segments = shape.segments
        );
        let (reach, stats) = self.reachable_sweep(output, cfg)?;
        stats.emit(rec, "reach");
        Ok((reach, stats))
    }

    /// [`Tape::reachable_sweep_replay`] reporting through an obs recorder.
    pub fn reachable_sweep_replay_observed(
        &self,
        output: crate::Adj,
        cfg: SweepConfig,
        replay: &dyn TapeReplay,
        rec: &Recorder,
    ) -> Result<(Vec<bool>, SweepStats), AdError> {
        let shape = self.stats();
        let _span = scrutiny_obs::span!(
            rec,
            "ad.sweep.reach",
            nodes = shape.nodes,
            segments = shape.segments
        );
        let ctx = ReplayCtx::new(replay, rec.clone());
        let (reach, stats) = self.reachable_sweep_ctx(output, cfg, &ctx)?;
        stats.emit(rec, "reach");
        Ok((reach, stats))
    }

    /// [`Tape::datadep_sweep`] reporting through an obs recorder
    /// (span `ad.sweep.datadep`, gauges `ad.sweep.datadep.*`).
    pub fn datadep_sweep_observed(
        &self,
        output: crate::Adj,
        cfg: SweepConfig,
        rec: &Recorder,
    ) -> Result<DataDep, AdError> {
        let shape = self.stats();
        let _span = scrutiny_obs::span!(
            rec,
            "ad.sweep.datadep",
            nodes = shape.nodes,
            segments = shape.segments
        );
        let dd = self.datadep_sweep(output, cfg)?;
        dd.stats().emit(rec, "datadep");
        Ok(dd)
    }

    /// [`Tape::datadep_sweep_replay`] reporting through an obs recorder.
    pub fn datadep_sweep_replay_observed(
        &self,
        output: crate::Adj,
        cfg: SweepConfig,
        replay: &dyn TapeReplay,
        rec: &Recorder,
    ) -> Result<DataDep, AdError> {
        let shape = self.stats();
        let _span = scrutiny_obs::span!(
            rec,
            "ad.sweep.datadep",
            nodes = shape.nodes,
            segments = shape.segments
        );
        let ctx = ReplayCtx::new(replay, rec.clone());
        let dd = datadep::analyze(self, output.index(), cfg, &ctx)?;
        dd.stats().emit(rec, "datadep");
        Ok(dd)
    }
}

/// Memory/size counters for a recorded tape.
///
/// `bytes` is the full logical footprint — what every opened segment
/// reserves at fixed capacity, whether currently resident or evicted.
/// Under a [`TapeCheckpointConfig`] the memory actually held is
/// `resident_bytes`, and the bounded-memory guarantee is stated over
/// `peak_resident_bytes` — the high-water mark across recording and every
/// sweep, which eviction keeps at `O(ncheckpoints · segment)` instead of
/// `O(bytes)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TapeStats {
    /// Total nodes recorded (leaves included).
    pub nodes: usize,
    /// Leaf (input) nodes.
    pub leaves: usize,
    /// Segments recorded (resident and evicted alike).
    pub segments: usize,
    /// Nodes per segment.
    pub segment_len: usize,
    /// Full logical footprint of the recording: every segment at its
    /// fixed capacity, evicted or not. What an unbounded tape allocates.
    pub bytes: usize,
    /// Arena bytes currently resident (evicted segments excluded).
    pub resident_bytes: usize,
    /// High-water mark of resident arena bytes over the tape's lifetime.
    pub peak_resident_bytes: usize,
    /// Segments currently evicted to `(len, digest)` summaries.
    pub evicted_segments: usize,
    /// Segments re-recorded by replay over the tape's lifetime.
    pub replayed_segments: u64,
    /// Additional transient heap a full analysis needs while sweeping:
    /// the dense adjoint vector (8 bytes/node) plus the reachability
    /// bitset (1 bit/node).
    pub sweep_bytes: usize,
}

impl TapeStats {
    /// Allocated bytes per segment.
    pub fn bytes_per_segment(&self) -> usize {
        self.segment_len * NODE_BYTES
    }
}

/// The thread-local recording target: a [`Tape`] during a normal session,
/// a [`ReplaySink`] while re-recording evicted segments.
enum Active {
    Record(Tape),
    Replay(ReplaySink),
}

thread_local! {
    static ACTIVE: RefCell<Option<Active>> = const { RefCell::new(None) };
}

/// RAII guard for the thread-local recording session.
///
/// Creating a session installs a fresh tape; all [`crate::Adj`] arithmetic
/// on this thread records onto it until [`TapeSession::finish`] extracts
/// the tape (or the guard is dropped, which discards the recording).
/// Sessions do not nest: starting one while another is active panics,
/// because silently splicing two recordings would corrupt both gradients.
pub struct TapeSession {
    finished: bool,
}

impl TapeSession {
    /// Start recording on this thread with the default configuration.
    pub fn new() -> Self {
        Self::with_config(TapeConfig::default())
    }

    /// Start recording with spine room for `capacity` nodes. Thanks to
    /// segmented storage this is a soft hint — an under-estimate no longer
    /// triggers whole-tape reallocation copies mid-kernel.
    pub fn with_capacity(capacity: usize) -> Self {
        Self::with_config(TapeConfig {
            capacity,
            ..TapeConfig::default()
        })
    }

    /// Start recording with an explicit [`TapeConfig`] (segment length,
    /// node budget, and checkpoint policy included).
    pub fn with_config(cfg: TapeConfig) -> Self {
        ACTIVE.with(|slot| {
            let mut slot = slot.borrow_mut();
            assert!(
                slot.is_none(),
                "a TapeSession is already active on this thread; sessions do not nest"
            );
            *slot = Some(Active::Record(Tape::with_config(cfg)));
        });
        TapeSession { finished: false }
    }

    /// Stop recording and take ownership of the tape (sealed: the open
    /// segment joins the sweepable slot table, and under a checkpoint
    /// policy the residency budget is enforced one final time).
    pub fn finish(mut self) -> Tape {
        self.finished = true;
        let active = ACTIVE
            .with(|slot| slot.borrow_mut().take())
            .expect("active tape vanished while the session guard was alive");
        match active {
            Active::Record(mut tape) => {
                tape.seal();
                tape
            }
            Active::Replay(_) => {
                unreachable!("a TapeSession cannot be active during a replay")
            }
        }
    }

    /// Nodes recorded so far (useful for progress/capacity diagnostics).
    pub fn recorded(&self) -> usize {
        ACTIVE.with(|slot| match slot.borrow().as_ref() {
            Some(Active::Record(t)) => t.len(),
            _ => 0,
        })
    }
}

impl Default for TapeSession {
    fn default() -> Self {
        Self::new()
    }
}

impl Drop for TapeSession {
    fn drop(&mut self) {
        if !self.finished {
            ACTIVE.with(|slot| slot.borrow_mut().take());
        }
    }
}

/// True if a recording session is active on this thread.
pub fn recording() -> bool {
    ACTIVE.with(|slot| matches!(slot.borrow().as_ref(), Some(Active::Record(_))))
}

/// Install a replay sink on this thread (see [`crate::replay`]). Panics
/// if a recording session or another replay is active — replays run on
/// sweep threads, never inside a session.
pub(crate) fn begin_replay(sink: ReplaySink) {
    ACTIVE.with(|slot| {
        let mut slot = slot.borrow_mut();
        assert!(
            slot.is_none(),
            "cannot replay while a TapeSession or another replay is active on this thread"
        );
        *slot = Some(Active::Replay(sink));
    });
}

/// Remove and return the replay sink installed by [`begin_replay`].
pub(crate) fn take_replay() -> ReplaySink {
    ACTIVE.with(|slot| match slot.borrow_mut().take() {
        Some(Active::Replay(sink)) => sink,
        _ => unreachable!("take_replay without an installed replay sink"),
    })
}

/// Clear the replay sink unconditionally (unwind path: a panicking replay
/// closure must not leave the thread's recording slot poisoned).
pub(crate) fn abort_replay() {
    ACTIVE.with(|slot| {
        let mut slot = slot.borrow_mut();
        if matches!(slot.as_ref(), Some(Active::Replay(_))) {
            *slot = None;
        }
    });
}

#[inline]
pub(crate) fn record_node(p1: u64, d1: f64, p2: u64, d2: f64) -> u64 {
    ACTIVE.with(|slot| {
        match slot
            .borrow_mut()
            .as_mut()
            .expect("arithmetic on tracked Adj values requires an active TapeSession")
        {
            Active::Record(tape) => tape.push(p1, d1, p2, d2),
            Active::Replay(sink) => sink.push(p1, d1, p2, d2),
        }
    })
}

#[inline]
pub(crate) fn record_leaf() -> u64 {
    ACTIVE.with(|slot| {
        match slot
            .borrow_mut()
            .as_mut()
            .expect("Adj::leaf requires an active TapeSession")
        {
            Active::Record(tape) => tape.push_leaf(),
            Active::Replay(sink) => sink.push(NONE, 0.0, NONE, 0.0),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Adj;

    #[test]
    fn empty_tape_stats() {
        let t = Tape::default();
        assert_eq!(t.len(), 0);
        assert!(t.is_empty());
        assert_eq!(t.stats().bytes, 0);
        assert_eq!(t.stats().segments, 0);
    }

    #[test]
    fn stats_account_allocated_capacity() {
        let s = TapeSession::with_config(TapeConfig {
            segment_len: 8,
            ..TapeConfig::default()
        });
        let x = Adj::leaf(1.0);
        let mut y = x;
        for _ in 0..10 {
            y *= 2.0;
        }
        let tape = s.finish();
        let stats = tape.stats();
        assert_eq!(stats.nodes, 11);
        assert_eq!(stats.segments, 2);
        assert_eq!(stats.segment_len, 8);
        // Both segments are fully allocated even though the second holds
        // only 3 nodes: bytes reports real capacity, not len × node-size.
        assert_eq!(stats.bytes, 2 * 8 * NODE_BYTES);
        assert_eq!(stats.bytes, 2 * stats.bytes_per_segment());
        assert_eq!(stats.sweep_bytes, 11 * 8 + 2);
        // Nothing is evicted without a checkpoint policy: resident is the
        // full footprint and already the peak.
        assert_eq!(stats.resident_bytes, stats.bytes);
        assert_eq!(stats.peak_resident_bytes, stats.bytes);
        assert_eq!(stats.evicted_segments, 0);
        assert_eq!(stats.replayed_segments, 0);
    }

    #[test]
    fn session_drop_discards() {
        {
            let _s = TapeSession::new();
            let _x = Adj::leaf(1.0);
        }
        assert!(!recording());
        // A new session can start after the old one was dropped.
        let s = TapeSession::new();
        assert!(recording());
        drop(s);
        assert!(!recording());
    }

    #[test]
    #[should_panic(expected = "do not nest")]
    fn nested_sessions_panic() {
        let _a = TapeSession::new();
        let _b = TapeSession::new();
    }

    #[test]
    fn gradient_of_constant_output_is_zero() {
        let s = TapeSession::new();
        let x = Adj::leaf(5.0);
        let c = Adj::constant(2.0) * 3.0; // never touches the tape
        let tape = s.finish();
        let g = tape.gradient(c).unwrap();
        assert_eq!(g.wrt(x), 0.0);
    }

    #[test]
    fn linear_chain_gradient() {
        let s = TapeSession::new();
        let x = Adj::leaf(3.0);
        let mut y = x;
        for _ in 0..10 {
            y *= 2.0;
        }
        let tape = s.finish();
        assert_eq!(tape.gradient(y).unwrap().wrt(x), 1024.0);
    }

    #[test]
    fn overflow_poisons_instead_of_aborting() {
        let s = TapeSession::with_config(TapeConfig {
            segment_len: 8,
            node_limit: 6,
            ..TapeConfig::default()
        });
        let x = Adj::leaf(2.0);
        let mut y = x;
        for _ in 0..20 {
            y = y * 2.0 + 1.0; // blows the 6-node budget mid-loop
        }
        // The record keeps running (no abort); the value is still exact.
        let expected = {
            let mut v = 2.0f64;
            for _ in 0..20 {
                v = v * 2.0 + 1.0;
            }
            v
        };
        assert_eq!(y.value(), expected);
        let tape = s.finish();
        assert!(tape.overflowed());
        assert_eq!(
            tape.gradient(y).unwrap_err(),
            AdError::TapeOverflow { limit: 6 }
        );
        assert_eq!(
            tape.reachable(y).unwrap_err(),
            AdError::TapeOverflow { limit: 6 }
        );
    }

    #[test]
    fn out_of_range_seed_is_a_typed_error() {
        let s = TapeSession::new();
        let _x = Adj::leaf(1.0);
        let tape = s.finish();
        assert_eq!(
            tape.gradient_of(5).unwrap_err(),
            AdError::NodeOutOfRange { node: 5, len: 1 }
        );
        assert_eq!(
            tape.reachable_of(5).unwrap_err(),
            AdError::NodeOutOfRange { node: 5, len: 1 }
        );
    }

    #[test]
    fn reachability_superset_of_nonzero_gradient() {
        let s = TapeSession::new();
        let x = Adj::leaf(3.0);
        let y = Adj::leaf(4.0);
        let cancel = x - x; // structurally reachable, zero derivative
        let out = cancel * y;
        let tape = s.finish();
        let g = tape.gradient(out).unwrap();
        let r = tape.reachable(out).unwrap();
        assert_eq!(g.wrt(x), 0.0, "x-x cancels exactly");
        assert!(r[x.index().unwrap() as usize], "x is structurally active");
        // y's gradient is zero too (multiplied by a zero value) but reachable.
        assert_eq!(g.wrt(y), 0.0);
        assert!(r[y.index().unwrap() as usize]);
    }

    #[test]
    fn leaf_count_tracks_leaves() {
        let s = TapeSession::new();
        let a = Adj::leaf(1.0);
        let b = Adj::leaf(2.0);
        let _ = a + b;
        let tape = s.finish();
        assert_eq!(tape.leaf_count(), 2);
        assert_eq!(tape.len(), 3);
    }

    #[test]
    fn gradient_of_range_is_contiguous() {
        let s = TapeSession::new();
        let leaves: Vec<Adj> = (0..4).map(|i| Adj::leaf(i as f64)).collect();
        let sum = leaves.iter().fold(Adj::constant(0.0), |acc, &v| acc + v);
        let out = sum * 2.0;
        let tape = s.finish();
        let g = tape.gradient(out).unwrap();
        let start = leaves[0].index().unwrap();
        let grads = g.of_range(start, 4);
        assert_eq!(grads, &[2.0, 2.0, 2.0, 2.0]);
    }

    // ----- checkpointed tapes ----------------------------------------

    /// A deterministic multi-segment computation usable both as the
    /// original recording and as its own replay closure.
    fn chain_computation() -> (Adj, Adj) {
        let x = Adj::leaf(1.5);
        let y = Adj::leaf(-0.25);
        let mut acc = x * 2.0 + y;
        for i in 0..200 {
            acc = acc * 1.001 + x * (i as f64 * 0.01) - y;
        }
        (x, acc)
    }

    fn checkpointed_cfg(n: usize) -> TapeConfig {
        TapeConfig {
            segment_len: 32,
            checkpoint: Some(TapeCheckpointConfig::with_ncheckpoints(n)),
            ..TapeConfig::default()
        }
    }

    #[test]
    fn checkpointed_gradient_is_bit_identical_to_unbounded() {
        let s = TapeSession::with_config(TapeConfig {
            segment_len: 32,
            ..TapeConfig::default()
        });
        let (x, out) = chain_computation();
        let tape = s.finish();
        let unbounded = tape.gradient(out).unwrap();

        let s = TapeSession::with_config(checkpointed_cfg(2));
        let (cx, cout) = chain_computation();
        let ctape = s.finish();
        assert!(ctape.stats().evicted_segments > 0, "eviction happened");
        // Ids line up: the replay is the same computation.
        assert_eq!(x.index(), cx.index());
        let replay = || {
            let _ = chain_computation();
        };
        let (g, stats) = ctape
            .gradient_sweep_replay(cout, SweepConfig::serial(), &replay)
            .unwrap();
        assert_eq!(g.wrt(cx).to_bits(), unbounded.wrt(x).to_bits());
        assert!(stats.replayed_segments > 0, "replay actually ran");
        // Residency never exceeded the configured budget.
        let budget = 2 * 32 * NODE_BYTES;
        assert!(
            ctape.peak_resident_bytes() <= budget,
            "peak {} > budget {}",
            ctape.peak_resident_bytes(),
            budget
        );
    }

    #[test]
    fn evicted_sweep_without_replayer_is_a_typed_error() {
        let s = TapeSession::with_config(checkpointed_cfg(1));
        let (_, out) = chain_computation();
        let tape = s.finish();
        assert!(matches!(
            tape.gradient(out).unwrap_err(),
            AdError::SegmentEvicted { .. }
        ));
    }

    #[test]
    fn divergent_replay_is_a_typed_error() {
        let s = TapeSession::with_config(checkpointed_cfg(1));
        let (_, out) = chain_computation();
        let tape = s.finish();
        // A replay that records *different* arithmetic diverges.
        let bad = || {
            let x = Adj::leaf(99.0);
            let mut acc = x;
            for _ in 0..500 {
                acc *= 1.5;
            }
        };
        assert!(matches!(
            tape.gradient_sweep_replay(out, SweepConfig::serial(), &bad)
                .unwrap_err(),
            AdError::ReplayDivergence { .. }
        ));
    }
}
