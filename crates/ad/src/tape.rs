//! The Wengert list (tape) and its reverse sweeps.
//!
//! The tape is a flat, append-only record of every tracked arithmetic
//! operation executed by the program between the checkpoint boundary and
//! the output. Checkpointed elements enter as *leaves*; the reverse sweep
//! then computes `∂output/∂leaf` for all leaves at once — the quantity the
//! paper uses to classify elements as critical (non-zero) or uncritical
//! (zero).

use std::cell::RefCell;

/// Sentinel parent index meaning "no parent" (constant operand or leaf).
pub(crate) const NONE: u32 = u32::MAX;

/// A recorded computation graph in structure-of-arrays layout.
///
/// Node `i` has up to two parents `p1[i], p2[i]` with local partial
/// derivatives `d1[i], d2[i]` (computed when the node was recorded).
/// Leaves have no parents. 24 bytes per node; values are *not* stored
/// because the reverse sweep only needs partials.
#[derive(Default)]
pub struct Tape {
    p1: Vec<u32>,
    p2: Vec<u32>,
    d1: Vec<f64>,
    d2: Vec<f64>,
    leaves: usize,
}

impl Tape {
    /// Create an empty tape with space reserved for `capacity` nodes.
    pub fn with_capacity(capacity: usize) -> Self {
        Tape {
            p1: Vec::with_capacity(capacity),
            p2: Vec::with_capacity(capacity),
            d1: Vec::with_capacity(capacity),
            d2: Vec::with_capacity(capacity),
            leaves: 0,
        }
    }

    /// Number of recorded nodes (leaves included).
    pub fn len(&self) -> usize {
        self.p1.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.p1.is_empty()
    }

    /// Number of leaf (input) nodes registered on this tape.
    pub fn leaf_count(&self) -> usize {
        self.leaves
    }

    /// Size and composition counters, for memory accounting in reports.
    pub fn stats(&self) -> TapeStats {
        TapeStats {
            nodes: self.len(),
            leaves: self.leaves,
            bytes: self.len() * (2 * 4 + 2 * 8),
        }
    }

    #[inline]
    pub(crate) fn push(&mut self, p1: u32, d1: f64, p2: u32, d2: f64) -> u32 {
        let idx = self.p1.len();
        assert!(idx < NONE as usize, "tape overflow: more than 2^32-1 nodes");
        self.p1.push(p1);
        self.p2.push(p2);
        self.d1.push(d1);
        self.d2.push(d2);
        idx as u32
    }

    #[inline]
    pub(crate) fn push_leaf(&mut self) -> u32 {
        self.leaves += 1;
        self.push(NONE, 0.0, NONE, 0.0)
    }

    /// Reverse (adjoint) sweep: derivative of the node `output` with respect
    /// to every node on the tape.
    ///
    /// A constant output (an [`crate::Adj`] that never touched the tape)
    /// yields an all-zero gradient: nothing influenced it.
    pub fn gradient(&self, output: crate::Adj) -> Gradient {
        match output.index() {
            Some(idx) => self.gradient_of(idx),
            None => Gradient {
                adj: vec![0.0; self.len()],
            },
        }
    }

    /// Reverse sweep seeded at an explicit node index.
    pub fn gradient_of(&self, output: u32) -> Gradient {
        let out = output as usize;
        assert!(
            out < self.len(),
            "output node {out} not on tape (len {})",
            self.len()
        );
        let mut adj = vec![0.0f64; self.len()];
        adj[out] = 1.0;
        for i in (0..=out).rev() {
            let a = adj[i];
            if a == 0.0 {
                continue;
            }
            let p1 = self.p1[i];
            if p1 != NONE {
                adj[p1 as usize] += a * self.d1[i];
            }
            let p2 = self.p2[i];
            if p2 != NONE {
                adj[p2 as usize] += a * self.d2[i];
            }
        }
        Gradient { adj }
    }

    /// Structural activity sweep: marks every node from which a data-flow
    /// path reaches `output`, ignoring partial-derivative *values*.
    ///
    /// This over-approximates [`Tape::gradient`]-based criticality: a node
    /// whose derivative cancels to exactly zero (e.g. `x - x`, or a
    /// multiplication by a tracked zero) is still structurally reachable.
    /// The paper's discussion section hopes for such an "algorithmic
    /// analysis"; the ablation benches quantify how often the two differ.
    pub fn reachable(&self, output: crate::Adj) -> Vec<bool> {
        match output.index() {
            Some(idx) => self.reachable_of(idx),
            None => vec![false; self.len()],
        }
    }

    /// Structural sweep seeded at an explicit node index.
    pub fn reachable_of(&self, output: u32) -> Vec<bool> {
        let out = output as usize;
        assert!(
            out < self.len(),
            "output node {out} not on tape (len {})",
            self.len()
        );
        let mut reach = vec![false; self.len()];
        reach[out] = true;
        for i in (0..=out).rev() {
            if !reach[i] {
                continue;
            }
            let p1 = self.p1[i];
            if p1 != NONE {
                reach[p1 as usize] = true;
            }
            let p2 = self.p2[i];
            if p2 != NONE {
                reach[p2 as usize] = true;
            }
        }
        reach
    }
}

/// Result of a reverse sweep: the adjoint of every tape node.
pub struct Gradient {
    adj: Vec<f64>,
}

impl Gradient {
    /// Derivative of the output with respect to the value `x`.
    ///
    /// Constants have zero derivative by definition.
    pub fn wrt(&self, x: crate::Adj) -> f64 {
        match x.index() {
            Some(idx) => self.adj[idx as usize],
            None => 0.0,
        }
    }

    /// Derivative of the output with respect to tape node `idx`.
    pub fn of_node(&self, idx: u32) -> f64 {
        self.adj[idx as usize]
    }

    /// Adjoints for a contiguous range of node ids (as produced when a
    /// whole checkpointed array is turned into leaves).
    pub fn of_range(&self, start: u32, len: usize) -> &[f64] {
        &self.adj[start as usize..start as usize + len]
    }

    /// Total number of adjoints (== tape length).
    pub fn len(&self) -> usize {
        self.adj.len()
    }

    /// True when the sweep covered an empty tape.
    pub fn is_empty(&self) -> bool {
        self.adj.is_empty()
    }
}

/// Memory/size counters for a recorded tape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TapeStats {
    /// Total nodes recorded (leaves included).
    pub nodes: usize,
    /// Leaf (input) nodes.
    pub leaves: usize,
    /// Approximate heap bytes held by the tape arrays.
    pub bytes: usize,
}

thread_local! {
    static ACTIVE: RefCell<Option<Tape>> = const { RefCell::new(None) };
}

/// RAII guard for the thread-local recording session.
///
/// Creating a session installs a fresh tape; all [`crate::Adj`] arithmetic
/// on this thread records onto it until [`TapeSession::finish`] extracts
/// the tape (or the guard is dropped, which discards the recording).
/// Sessions do not nest: starting one while another is active panics,
/// because silently splicing two recordings would corrupt both gradients.
pub struct TapeSession {
    finished: bool,
}

impl TapeSession {
    /// Start recording on this thread with a default capacity.
    pub fn new() -> Self {
        Self::with_capacity(1024)
    }

    /// Start recording with `capacity` nodes pre-reserved. Large analyses
    /// (NPB kernels) should reserve millions of nodes up front to avoid
    /// reallocation stalls mid-kernel.
    pub fn with_capacity(capacity: usize) -> Self {
        ACTIVE.with(|slot| {
            let mut slot = slot.borrow_mut();
            assert!(
                slot.is_none(),
                "a TapeSession is already active on this thread; sessions do not nest"
            );
            *slot = Some(Tape::with_capacity(capacity));
        });
        TapeSession { finished: false }
    }

    /// Stop recording and take ownership of the tape.
    pub fn finish(mut self) -> Tape {
        self.finished = true;
        ACTIVE
            .with(|slot| slot.borrow_mut().take())
            .expect("active tape vanished while the session guard was alive")
    }

    /// Nodes recorded so far (useful for progress/capacity diagnostics).
    pub fn recorded(&self) -> usize {
        ACTIVE.with(|slot| slot.borrow().as_ref().map_or(0, |t| t.len()))
    }
}

impl Default for TapeSession {
    fn default() -> Self {
        Self::new()
    }
}

impl Drop for TapeSession {
    fn drop(&mut self) {
        if !self.finished {
            ACTIVE.with(|slot| slot.borrow_mut().take());
        }
    }
}

/// True if a recording session is active on this thread.
pub fn recording() -> bool {
    ACTIVE.with(|slot| slot.borrow().is_some())
}

#[inline]
pub(crate) fn record_node(p1: u32, d1: f64, p2: u32, d2: f64) -> u32 {
    ACTIVE.with(|slot| {
        slot.borrow_mut()
            .as_mut()
            .expect("arithmetic on tracked Adj values requires an active TapeSession")
            .push(p1, d1, p2, d2)
    })
}

#[inline]
pub(crate) fn record_leaf() -> u32 {
    ACTIVE.with(|slot| {
        slot.borrow_mut()
            .as_mut()
            .expect("Adj::leaf requires an active TapeSession")
            .push_leaf()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Adj;

    #[test]
    fn empty_tape_stats() {
        let t = Tape::default();
        assert_eq!(t.len(), 0);
        assert!(t.is_empty());
        assert_eq!(t.stats().bytes, 0);
    }

    #[test]
    fn session_drop_discards() {
        {
            let _s = TapeSession::new();
            let _x = Adj::leaf(1.0);
        }
        assert!(!recording());
        // A new session can start after the old one was dropped.
        let s = TapeSession::new();
        assert!(recording());
        drop(s);
        assert!(!recording());
    }

    #[test]
    #[should_panic(expected = "do not nest")]
    fn nested_sessions_panic() {
        let _a = TapeSession::new();
        let _b = TapeSession::new();
    }

    #[test]
    fn gradient_of_constant_output_is_zero() {
        let s = TapeSession::new();
        let x = Adj::leaf(5.0);
        let c = Adj::constant(2.0) * 3.0; // never touches the tape
        let tape = s.finish();
        let g = tape.gradient(c);
        assert_eq!(g.wrt(x), 0.0);
    }

    #[test]
    fn linear_chain_gradient() {
        let s = TapeSession::new();
        let x = Adj::leaf(3.0);
        let mut y = x;
        for _ in 0..10 {
            y *= 2.0;
        }
        let tape = s.finish();
        assert_eq!(tape.gradient(y).wrt(x), 1024.0);
    }

    #[test]
    fn reachability_superset_of_nonzero_gradient() {
        let s = TapeSession::new();
        let x = Adj::leaf(3.0);
        let y = Adj::leaf(4.0);
        let cancel = x - x; // structurally reachable, zero derivative
        let out = cancel * y;
        let tape = s.finish();
        let g = tape.gradient(out);
        let r = tape.reachable(out);
        assert_eq!(g.wrt(x), 0.0, "x-x cancels exactly");
        assert!(r[x.index().unwrap() as usize], "x is structurally active");
        // y's gradient is zero too (multiplied by a zero value) but reachable.
        assert_eq!(g.wrt(y), 0.0);
        assert!(r[y.index().unwrap() as usize]);
    }

    #[test]
    fn leaf_count_tracks_leaves() {
        let s = TapeSession::new();
        let a = Adj::leaf(1.0);
        let b = Adj::leaf(2.0);
        let _ = a + b;
        let tape = s.finish();
        assert_eq!(tape.leaf_count(), 2);
        assert_eq!(tape.len(), 3);
    }

    #[test]
    fn gradient_of_range_is_contiguous() {
        let s = TapeSession::new();
        let leaves: Vec<Adj> = (0..4).map(|i| Adj::leaf(i as f64)).collect();
        let sum = leaves.iter().fold(Adj::constant(0.0), |acc, &v| acc + v);
        let out = sum * 2.0;
        let tape = s.finish();
        let g = tape.gradient(out);
        let start = leaves[0].index().unwrap();
        let grads = g.of_range(start, 4);
        assert_eq!(grads, &[2.0, 2.0, 2.0, 2.0]);
    }
}
