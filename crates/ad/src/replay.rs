//! Deterministic re-recording of evicted tape segments.
//!
//! Under a [`crate::TapeCheckpointConfig`] most of the tape is not kept in
//! memory: evicted segments survive only as `(len, digest)` summaries (see
//! [`crate::segment`]). When a sweep needs one, the *same computation that
//! produced the tape* is run again with a replay sink installed in
//! place of the recording tape: the sink counts every node so ids come out
//! identical, but materializes columns only for the window of segments the
//! sweep asked for. The re-recorded bytes are then checked against the
//! stored digests — any nondeterminism in the replayed computation is a
//! typed [`crate::AdError::ReplayDivergence`], never a silently wrong
//! gradient.

use crate::segment::Segment;
use scrutiny_obs::Recorder;
use std::sync::atomic::AtomicU64;

/// A deterministic re-run of the computation that recorded the tape.
///
/// The contract is strict determinism: called any number of times, the
/// closure must perform the *exact same* sequence of tracked operations
/// (same order, same operands, same partials) as the original recording.
/// Every re-recorded segment is digest-verified, so a violation surfaces
/// as [`crate::AdError::ReplayDivergence`] rather than a wrong result.
///
/// Any `Fn()` closure implements this; it is invoked with a replay sink
/// installed on the thread, so the tracked arithmetic inside needs no
/// changes — and must *not* open its own [`crate::TapeSession`].
pub trait TapeReplay {
    /// Re-run the recorded computation once.
    fn replay(&self);
}

impl<F: Fn()> TapeReplay for F {
    fn replay(&self) {
        self()
    }
}

/// The thread-local recording target during a replay: assigns ids by
/// counting (so they match the original recording) and stores columns only
/// for segments inside the requested window.
pub(crate) struct ReplaySink {
    /// Next node id (== nodes replayed so far).
    next: u64,
    shift: u32,
    win_start: usize,
    segs: Vec<Segment>,
}

impl ReplaySink {
    fn new(shift: u32, win_start: usize, win_len: usize, seg_len: usize) -> ReplaySink {
        ReplaySink {
            next: 0,
            shift,
            win_start,
            segs: (0..win_len)
                .map(|_| Segment::with_capacity(seg_len))
                .collect(),
        }
    }

    /// Counterpart of the tape's push: always advances the id counter,
    /// materializes only inside the window.
    #[inline]
    pub(crate) fn push(&mut self, p1: u64, d1: f64, p2: u64, d2: f64) -> u64 {
        let idx = self.next;
        self.next += 1;
        let s = (idx >> self.shift) as usize;
        if let Some(local) = s.checked_sub(self.win_start) {
            if let Some(seg) = self.segs.get_mut(local) {
                seg.p1.push(p1);
                seg.p2.push(p2);
                seg.d1.push(d1);
                seg.d2.push(d2);
            }
        }
        idx
    }
}

/// Re-record the window `[win_start, win_start + win_len)` of segments by
/// running `replayer` against a [`ReplaySink`], returning the materialized
/// segments and the *total* number of nodes the replay pushed (the
/// whole-tape divergence check). The sink is installed on this thread for
/// the duration and removed again even if the replayer panics.
pub(crate) fn rerecord(
    replayer: &dyn TapeReplay,
    shift: u32,
    win_start: usize,
    win_len: usize,
    seg_len: usize,
) -> (Vec<Segment>, u64) {
    crate::tape::begin_replay(ReplaySink::new(shift, win_start, win_len, seg_len));
    // Clear the thread-local sink even on unwind, so a panicking replay
    // closure cannot leave a poisoned recording slot behind.
    struct Cleanup;
    impl Drop for Cleanup {
        fn drop(&mut self) {
            crate::tape::abort_replay();
        }
    }
    let cleanup = Cleanup;
    replayer.replay();
    std::mem::forget(cleanup);
    let sink = crate::tape::take_replay();
    (sink.segs, sink.next)
}

/// Sweep-side replay context: the registered replayer (if any), the obs
/// recorder `ad.replay` spans go to, and a counter of segments re-recorded
/// during this sweep (reported in [`crate::SweepStats`]).
pub(crate) struct ReplayCtx<'a> {
    pub(crate) replayer: Option<&'a dyn TapeReplay>,
    pub(crate) rec: Recorder,
    pub(crate) replayed: AtomicU64,
}

impl<'a> ReplayCtx<'a> {
    /// No replayer: sweeps fail with a typed error on any evicted segment.
    pub(crate) fn none() -> ReplayCtx<'static> {
        ReplayCtx {
            replayer: None,
            rec: Recorder::disabled(),
            replayed: AtomicU64::new(0),
        }
    }

    /// Replay through `replayer`, reporting spans to `rec`.
    pub(crate) fn new(replayer: &'a dyn TapeReplay, rec: Recorder) -> ReplayCtx<'a> {
        ReplayCtx {
            replayer: Some(replayer),
            rec,
            replayed: AtomicU64::new(0),
        }
    }

    /// Segments re-recorded so far under this context.
    pub(crate) fn replayed_count(&self) -> u64 {
        self.replayed.load(std::sync::atomic::Ordering::Relaxed)
    }
}
