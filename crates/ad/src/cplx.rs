//! Complex arithmetic over any [`Real`] scalar.
//!
//! NPB's FT benchmark stores its state in a custom `dcomplex` struct with
//! `real`/`imag` doubles; its checkpoint variables (`y`, `sums`) are arrays
//! of that type. `Cplx<R>` mirrors it generically: with `R = f64` it is a
//! plain complex double, with `R = Adj` each component is a tape value, so
//! one `dcomplex` element contributes *two* leaves and is critical when
//! either component has a non-zero adjoint.

use crate::Real;
use std::ops::{Add, AddAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with differentiable components.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct Cplx<R> {
    /// Real part.
    pub re: R,
    /// Imaginary part.
    pub im: R,
}

impl<R: Real> Cplx<R> {
    /// Construct from components.
    #[inline]
    pub fn new(re: R, im: R) -> Self {
        Cplx { re, im }
    }

    /// Complex zero.
    #[inline]
    pub fn zero() -> Self {
        Cplx {
            re: R::zero(),
            im: R::zero(),
        }
    }

    /// Lift a pair of literals (AD constants).
    #[inline]
    pub fn lit(re: f64, im: f64) -> Self {
        Cplx {
            re: R::lit(re),
            im: R::lit(im),
        }
    }

    /// `e^{iθ}` for a literal angle — the FFT twiddle constructor.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        Cplx::lit(theta.cos(), theta.sin())
    }

    /// Primal value as an `(re, im)` pair.
    #[inline]
    pub fn value(self) -> (f64, f64) {
        (self.re.value(), self.im.value())
    }

    /// Multiply by a real scalar.
    #[inline]
    pub fn scale(self, s: R) -> Self {
        Cplx {
            re: self.re * s,
            im: self.im * s,
        }
    }

    /// Multiply by a literal.
    #[inline]
    pub fn scale_lit(self, s: f64) -> Self {
        Cplx {
            re: self.re * s,
            im: self.im * s,
        }
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Cplx {
            re: self.re,
            im: -self.im,
        }
    }

    /// Squared magnitude `re² + im²`.
    #[inline]
    pub fn norm_sqr(self) -> R {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude.
    #[inline]
    pub fn abs(self) -> R {
        self.norm_sqr().sqrt()
    }

    /// Multiplication by `i` (cheaper than a full complex multiply).
    #[inline]
    pub fn mul_i(self) -> Self {
        Cplx {
            re: -self.im,
            im: self.re,
        }
    }
}

impl<R: Real> Add for Cplx<R> {
    type Output = Cplx<R>;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        Cplx {
            re: self.re + rhs.re,
            im: self.im + rhs.im,
        }
    }
}

impl<R: Real> Sub for Cplx<R> {
    type Output = Cplx<R>;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        Cplx {
            re: self.re - rhs.re,
            im: self.im - rhs.im,
        }
    }
}

impl<R: Real> Mul for Cplx<R> {
    type Output = Cplx<R>;
    #[inline]
    fn mul(self, rhs: Self) -> Self {
        Cplx {
            re: self.re * rhs.re - self.im * rhs.im,
            im: self.re * rhs.im + self.im * rhs.re,
        }
    }
}

impl<R: Real> Neg for Cplx<R> {
    type Output = Cplx<R>;
    #[inline]
    fn neg(self) -> Self {
        Cplx {
            re: -self.re,
            im: -self.im,
        }
    }
}

impl<R: Real> AddAssign for Cplx<R> {
    #[inline]
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}

impl<R: Real> SubAssign for Cplx<R> {
    #[inline]
    fn sub_assign(&mut self, rhs: Self) {
        *self = *self - rhs;
    }
}

impl<R: Real> MulAssign for Cplx<R> {
    #[inline]
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Adj, TapeSession};

    #[test]
    fn complex_algebra_identities() {
        let a: Cplx<f64> = Cplx::new(1.0, 2.0);
        let b: Cplx<f64> = Cplx::new(-3.0, 0.5);
        let ab = a * b;
        assert!((ab.re - (1.0 * -3.0 - 2.0 * 0.5)).abs() < 1e-15);
        assert!((ab.im - (1.0 * 0.5 + 2.0 * -3.0)).abs() < 1e-15);
        // |ab| == |a||b|
        assert!((ab.abs() - a.abs() * b.abs()).abs() < 1e-12);
        // conj(a*b) == conj(a)*conj(b)
        let lhs = (a * b).conj();
        let rhs = a.conj() * b.conj();
        assert!((lhs.re - rhs.re).abs() < 1e-15);
        assert!((lhs.im - rhs.im).abs() < 1e-15);
    }

    #[test]
    fn cis_matches_euler() {
        let t = 0.731;
        let w: Cplx<f64> = Cplx::cis(t);
        assert!((w.re - t.cos()).abs() < 1e-15);
        assert!((w.im - t.sin()).abs() < 1e-15);
        assert!((w.norm_sqr() - 1.0).abs() < 1e-15);
    }

    #[test]
    fn mul_i_rotates() {
        let a: Cplx<f64> = Cplx::new(3.0, 4.0);
        let r = a.mul_i();
        assert_eq!((r.re, r.im), (-4.0, 3.0));
    }

    #[test]
    fn gradient_through_complex_multiply() {
        // f = Re((x + iy) * w), w constant => df/dx = Re(w), df/dy = -Im(w)
        let s = TapeSession::new();
        let x = Adj::leaf(1.5);
        let y = Adj::leaf(-0.5);
        let z = Cplx::new(x, y);
        let w: Cplx<Adj> = Cplx::lit(0.6, 0.8);
        let f = (z * w).re;
        let tape = s.finish();
        let g = tape.gradient(f).unwrap();
        assert!((g.wrt(x) - 0.6).abs() < 1e-15);
        assert!((g.wrt(y) + 0.8).abs() < 1e-15);
    }

    #[test]
    fn twiddles_are_constants() {
        // Constant complex arithmetic must not record tape nodes.
        let s = TapeSession::new();
        let w: Cplx<Adj> = Cplx::cis(0.1);
        let v = w * w * w;
        assert!(!v.re.is_tracked() && !v.im.is_tracked());
        let tape = s.finish();
        assert_eq!(tape.len(), 0);
    }
}
