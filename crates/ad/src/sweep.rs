//! Reverse sweeps over the segmented tape: serial and parallel, always
//! bit-identical.
//!
//! A reverse sweep visits nodes in decreasing id order; node `i`'s adjoint
//! is complete only after every node `j > i` has contributed, so the sweep
//! is sequential *across* segments. The parallelism here is in the
//! **merge**: while the single sweep thread walks segment `s`, its adjoint
//! contributions to earlier segments are not scattered into a huge adjoint
//! vector (a cache-miss per contribution on NPB-sized tapes) but appended
//! to per-target *frontier buffers* — ordered lists of
//! `(offset, contribution)` pairs. Worker threads own disjoint target
//! segments and replay those buffers into the per-segment adjoint chunks
//! concurrently with the sweep of later segments.
//!
//! **Determinism.** Floating-point addition is not associative, so
//! bit-identity with the serial sweep requires that every adjoint slot
//! receive *the same contributions in the same order*. The serial order
//! for slot `k` is decreasing contributor id: all contributions from
//! segment `N`, then all from `N−1`, … each group internally in decreasing
//! id. The parallel sweep preserves exactly that order: frontier buffers
//! are emitted in decreasing-id order within a segment, each `(source s,
//! target t)` buffer is sent at most once, sources sweep in decreasing
//! order, and the worker owning `t` replays its queue FIFO — so slot `k`'s
//! additions happen in serial order even though *different* slots merge
//! concurrently. That schedule lives in one place — the private
//! `run_frontier_sweep` — shared by both sweeps; a private `SweepKernel`
//! supplies the per-segment math. The property suite (`crates/ad/tests/segmented.rs`) checks
//! `to_bits`-equality on random tapes; the root
//! `tests/sweep_equivalence.rs` checks it on real NPB recordings.
//!
//! Structural reachability uses the same schedule with per-segment
//! **bitsets**: reachability is a monotone OR, so its merge order could
//! not matter — the deterministic schedule is shared anyway.
//!
//! **Bounded memory.** Under a [`crate::TapeCheckpointConfig`] the sweep
//! thread fetches each segment through [`crate::segment`]'s windowed
//! `view` instead of a resident slice: evicted segments are re-recorded
//! (and digest-verified) on demand through the replay context, and
//! segments behind the sweep are demoted again, so tape residency stays at
//! `O(ncheckpoints · segment)` for the whole walk. Only the single sweep
//! thread touches segment columns — the merge workers operate on adjoint
//! chunks alone — so the frontier schedule (and its bit-identity argument)
//! is untouched by eviction.

use crate::error::AdError;
use crate::replay::ReplayCtx;
use crate::segment::{Dir, Segment, NONE};
use crate::tape::Tape;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Condvar, Mutex};

/// How a reverse sweep should run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SweepConfig {
    /// Total threads the sweep may use (the sweep thread itself plus merge
    /// workers). `0` means one thread per available core; `1` forces the
    /// serial sweep. Results are bit-identical for every value.
    pub threads: usize,
}

impl SweepConfig {
    /// Force the serial (seed-equivalent) sweep.
    pub fn serial() -> SweepConfig {
        SweepConfig { threads: 1 }
    }

    /// Use exactly `threads` threads (sweep thread + `threads − 1` merge
    /// workers).
    pub fn with_threads(threads: usize) -> SweepConfig {
        SweepConfig { threads }
    }

    fn resolve(self) -> usize {
        if self.threads == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            self.threads
        }
    }
}

/// What a reverse sweep did, for the analysis report and the benches.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SweepStats {
    /// Segments the sweep visited (those at or below the seed node).
    pub segments: usize,
    /// Threads used: `1` for the serial sweep, sweep thread + merge
    /// workers for the parallel sweep.
    pub threads: usize,
    /// Adjoint (or reachability) contributions that crossed a segment
    /// boundary and were routed through frontier buffers. `0` for serial
    /// sweeps, which scatter directly.
    pub cross_contribs: u64,
    /// True when the frontier-merge workers ran.
    pub parallel: bool,
    /// Segments re-recorded by replay during this sweep; `0` when every
    /// segment was resident.
    pub replayed_segments: u64,
    /// High-water mark of resident tape-arena bytes over the tape's
    /// lifetime so far (recording included). Under a
    /// [`crate::TapeCheckpointConfig`] this is the measurable
    /// bounded-memory guarantee: it stays within
    /// `ncheckpoints × segment bytes` however long the tape is.
    pub peak_resident_bytes: usize,
}

impl SweepStats {
    /// Exports the stats as obs gauges `ad.sweep.<which>.*` (gauge *set*
    /// semantics: the most recent sweep of a given kind wins). `which` is
    /// one of the sweep kinds used by the analysis layer: `value`,
    /// `reach`, or `datadep`.
    pub fn emit(&self, rec: &scrutiny_obs::Recorder, which: &str) {
        if !rec.is_enabled() {
            return;
        }
        rec.set_gauge(&format!("ad.sweep.{which}.segments"), self.segments as i64);
        rec.set_gauge(&format!("ad.sweep.{which}.threads"), self.threads as i64);
        rec.set_gauge(
            &format!("ad.sweep.{which}.cross_contribs"),
            self.cross_contribs as i64,
        );
        rec.set_gauge(
            &format!("ad.sweep.{which}.parallel"),
            i64::from(self.parallel),
        );
        rec.set_gauge(
            &format!("ad.sweep.{which}.replayed_segments"),
            self.replayed_segments as i64,
        );
        rec.set_gauge(
            &format!("ad.sweep.{which}.peak_resident_bytes"),
            self.peak_resident_bytes as i64,
        );
    }

    /// Reconstructs the stats of the most recent `which` sweep from a
    /// snapshot — the inverse of [`SweepStats::emit`], and the view the
    /// analysis report now reads instead of plumbing the struct through
    /// every layer by hand. `None` when no such sweep was recorded.
    pub fn from_snapshot(snap: &scrutiny_obs::Snapshot, which: &str) -> Option<SweepStats> {
        Some(SweepStats {
            segments: snap.gauge(&format!("ad.sweep.{which}.segments"))? as usize,
            threads: snap.gauge(&format!("ad.sweep.{which}.threads"))? as usize,
            cross_contribs: snap.gauge(&format!("ad.sweep.{which}.cross_contribs"))? as u64,
            parallel: snap.gauge(&format!("ad.sweep.{which}.parallel"))? != 0,
            replayed_segments: snap.gauge(&format!("ad.sweep.{which}.replayed_segments"))? as u64,
            peak_resident_bytes: snap.gauge(&format!("ad.sweep.{which}.peak_resident_bytes"))?
                as usize,
        })
    }

    /// Merges stats from repeated sweeps over the same tape (burn-in
    /// aggregation): structural fields (`segments`, `threads`,
    /// `peak_resident_bytes`) take the maximum, traffic counters
    /// (`cross_contribs`, `replayed_segments`) **sum**, `parallel` ORs.
    pub fn merged_with(&self, other: &SweepStats) -> SweepStats {
        SweepStats {
            segments: self.segments.max(other.segments),
            threads: self.threads.max(other.threads),
            cross_contribs: self.cross_contribs + other.cross_contribs,
            parallel: self.parallel || other.parallel,
            replayed_segments: self.replayed_segments + other.replayed_segments,
            peak_resident_bytes: self.peak_resident_bytes.max(other.peak_resident_bytes),
        }
    }
}

/// Result of a value reverse sweep: the adjoint of every tape node.
#[derive(Debug)]
pub struct Gradient {
    pub(crate) adj: Vec<f64>,
}

impl Gradient {
    /// Derivative of the output with respect to the value `x`.
    ///
    /// Constants have zero derivative by definition.
    pub fn wrt(&self, x: crate::Adj) -> f64 {
        match x.index() {
            Some(idx) => self.adj[idx as usize],
            None => 0.0,
        }
    }

    /// Derivative of the output with respect to tape node `idx`.
    pub fn of_node(&self, idx: u64) -> f64 {
        self.adj[idx as usize]
    }

    /// Adjoints for a contiguous range of node ids (as produced when a
    /// whole checkpointed array is turned into leaves).
    pub fn of_range(&self, start: u64, len: usize) -> &[f64] {
        &self.adj[start as usize..start as usize + len]
    }

    /// Total number of adjoints (== tape length).
    pub fn len(&self) -> usize {
        self.adj.len()
    }

    /// True when the sweep covered an empty tape.
    pub fn is_empty(&self) -> bool {
        self.adj.is_empty()
    }
}

/// Reject sweeps on poisoned tapes and out-of-range seeds.
pub(crate) fn check_seed(tape: &Tape, out: u64) -> Result<(), AdError> {
    if tape.overflowed() {
        return Err(AdError::TapeOverflow {
            limit: tape.node_limit(),
        });
    }
    if out >= tape.len() as u64 {
        return Err(AdError::NodeOutOfRange {
            node: out,
            len: tape.len() as u64,
        });
    }
    Ok(())
}

/// Sweeps seeded by a constant output touch nothing; report them as such.
pub(crate) fn constant_stats() -> SweepStats {
    SweepStats {
        segments: 0,
        threads: 1,
        cross_contribs: 0,
        parallel: false,
        replayed_segments: 0,
        peak_resident_bytes: 0,
    }
}

/// Fill in the replay/residency fields once a sweep finished: how many
/// segments this context re-recorded, and the tape's resident high-water
/// mark (which the sweep may just have raised).
fn finalize_stats(mut stats: SweepStats, tape: &Tape, ctx: &ReplayCtx<'_>) -> SweepStats {
    stats.replayed_segments = ctx.replayed_count();
    stats.peak_resident_bytes = tape.store().peak_resident_bytes();
    stats
}

// ---- the shared deterministic schedule -----------------------------------

/// The per-segment math of one sweep; [`run_frontier_sweep`] supplies the
/// deterministic schedule (segment order, frontier routing, merge waits)
/// around it, once, for both sweeps.
trait SweepKernel: Sync {
    /// Per-segment accumulator: an adjoint chunk or a bitset.
    type Chunk: Send;
    /// One cross-segment frontier contribution.
    type Item: Send;

    /// A zeroed accumulator for a segment holding `nodes` nodes.
    fn new_chunk(&self, nodes: usize) -> Self::Chunk;

    /// Plant the sweep seed at `off` in the seed segment's chunk.
    fn seed(&self, chunk: &mut Self::Chunk, off: usize);

    /// Sweep one segment in decreasing offset order: apply same-segment
    /// contributions directly to `chunk`, push cross-segment ones onto
    /// `frontier[target]` in emission order.
    fn sweep_segment(
        &self,
        seg: &Segment,
        s: usize,
        shift: u32,
        mask: u64,
        chunk: &mut Self::Chunk,
        frontier: &mut [Vec<Self::Item>],
    );

    /// Replay one frontier buffer into a target segment's chunk.
    fn merge(&self, chunk: &mut Self::Chunk, list: &[Self::Item]);
}

/// Coordination state shared between the sweep thread and merge workers.
struct Gate {
    lock: Mutex<()>,
    cvar: Condvar,
}

impl Gate {
    fn new() -> Gate {
        Gate {
            lock: Mutex::new(()),
            cvar: Condvar::new(),
        }
    }

    /// Block until `applied` reaches `expected`.
    fn wait_for(&self, applied: &AtomicU64, expected: u64) {
        let mut guard = self.lock.lock().unwrap();
        while applied.load(Ordering::Acquire) < expected {
            guard = self.cvar.wait(guard).unwrap();
        }
    }

    /// Record one applied buffer and wake the sweep thread.
    fn bump(&self, applied: &AtomicU64) {
        let _guard = self.lock.lock().unwrap();
        applied.fetch_add(1, Ordering::Release);
        self.cvar.notify_all();
    }
}

/// Run `kernel` under the deterministic frontier-merge schedule and return
/// the per-segment chunks (for segments `0..=seed segment`) plus stats.
///
/// Worker `w` owns every target segment `t` with `t % workers == w`, so
/// chunk access is disjoint; the sweep thread sends each `(source,
/// target)` buffer at most once, in decreasing source order, and waits for
/// `applied[s] == sent[s]` before sweeping segment `s` — at which point no
/// later source can send to `s` again, so per-slot merge order equals the
/// serial contribution order.
///
/// Segment columns are fetched through windowed views — only this thread
/// touches them, so eviction/replay composes with the merge schedule
/// without changing it. A replay failure aborts the sweep with its typed
/// error once the workers have drained.
fn run_frontier_sweep<K: SweepKernel>(
    tape: &Tape,
    out: u64,
    workers: usize,
    kernel: &K,
    ctx: &ReplayCtx<'_>,
) -> Result<(Vec<K::Chunk>, SweepStats), AdError> {
    let store = tape.store();
    let shift = store.shift();
    let mask = store.mask();
    let last_seg = (out >> shift) as usize;

    let chunks: Vec<Mutex<K::Chunk>> = (0..=last_seg)
        .map(|s| Mutex::new(kernel.new_chunk(store.seg_nodes(s))))
        .collect();
    kernel.seed(&mut chunks[last_seg].lock().unwrap(), (out & mask) as usize);
    let applied: Vec<AtomicU64> = (0..=last_seg).map(|_| AtomicU64::new(0)).collect();
    let gate = Gate::new();
    let mut cross = 0u64;
    let mut failed = None;

    let mut txs = Vec::with_capacity(workers);
    let mut rxs = Vec::with_capacity(workers);
    for _ in 0..workers {
        let (tx, rx) = mpsc::channel::<(usize, Vec<K::Item>)>();
        txs.push(tx);
        rxs.push(rx);
    }

    std::thread::scope(|scope| {
        for rx in rxs {
            let chunks = &chunks;
            let applied = &applied;
            let gate = &gate;
            scope.spawn(move || {
                // FIFO replay of this worker's queue preserves the
                // decreasing-source order the sweep thread sends in.
                while let Ok((t, list)) = rx.recv() {
                    kernel.merge(&mut chunks[t].lock().unwrap(), &list);
                    gate.bump(&applied[t]);
                }
            });
        }

        // The sweep itself, on this thread: decreasing segment order.
        let mut sent = vec![0u64; last_seg + 1];
        for s in (0..=last_seg).rev() {
            // Segment `s` may be swept once every frontier buffer sent to
            // it (all from segments > s, all already swept) is merged.
            gate.wait_for(&applied[s], sent[s]);
            let seg = match store.view(s, Dir::Rev, ctx) {
                Ok(seg) => seg,
                Err(e) => {
                    failed = Some(e);
                    break;
                }
            };
            let mut frontier: Vec<Vec<K::Item>> = (0..s).map(|_| Vec::new()).collect();
            kernel.sweep_segment(
                &seg,
                s,
                shift,
                mask,
                &mut chunks[s].lock().unwrap(),
                &mut frontier,
            );
            for (t, list) in frontier.into_iter().enumerate() {
                if list.is_empty() {
                    continue;
                }
                cross += list.len() as u64;
                sent[t] += 1;
                txs[t % workers]
                    .send((t, list))
                    .expect("merge worker exited before the sweep finished");
            }
        }
        drop(txs);
    });
    if let Some(e) = failed {
        return Err(e);
    }

    let stats = SweepStats {
        segments: last_seg + 1,
        threads: workers + 1,
        cross_contribs: cross,
        parallel: true,
        ..constant_stats()
    };
    Ok((
        chunks
            .into_iter()
            .map(|c| c.into_inner().unwrap())
            .collect(),
        stats,
    ))
}

// ---- value sweep ---------------------------------------------------------

/// Serial value sweep: the seed algorithm, walked segment by segment.
pub(crate) fn gradient_serial(
    tape: &Tape,
    out: u64,
    ctx: &ReplayCtx<'_>,
) -> Result<(Gradient, SweepStats), AdError> {
    check_seed(tape, out)?;
    let store = tape.store();
    let shift = store.shift();
    let mut adj = vec![0.0f64; tape.len()];
    adj[out as usize] = 1.0;
    let last_seg = (out >> shift) as usize;
    for s in (0..=last_seg).rev() {
        let seg = store.view(s, Dir::Rev, ctx)?;
        let base = s << shift;
        let top = if s == last_seg {
            out as usize - base
        } else {
            seg.len() - 1
        };
        for off in (0..=top).rev() {
            let a = adj[base + off];
            if a == 0.0 {
                continue;
            }
            let p1 = seg.p1[off];
            if p1 != NONE {
                adj[p1 as usize] += a * seg.d1[off];
            }
            let p2 = seg.p2[off];
            if p2 != NONE {
                adj[p2 as usize] += a * seg.d2[off];
            }
        }
    }
    let stats = SweepStats {
        segments: last_seg + 1,
        threads: 1,
        cross_contribs: 0,
        parallel: false,
        ..constant_stats()
    };
    Ok((Gradient { adj }, stats))
}

/// Adjoint multiply-add over `f64` chunks.
struct GradientKernel;

impl SweepKernel for GradientKernel {
    type Chunk = Vec<f64>;
    type Item = (u32, f64);

    fn new_chunk(&self, nodes: usize) -> Vec<f64> {
        vec![0.0; nodes]
    }

    fn seed(&self, chunk: &mut Vec<f64>, off: usize) {
        chunk[off] = 1.0;
    }

    fn sweep_segment(
        &self,
        seg: &Segment,
        s: usize,
        shift: u32,
        mask: u64,
        chunk: &mut Vec<f64>,
        frontier: &mut [Vec<(u32, f64)>],
    ) {
        // Offsets above the seed (in the seed segment) hold 0 and are
        // skipped, matching the serial sweep's `top` bound.
        for off in (0..chunk.len()).rev() {
            let a = chunk[off];
            if a == 0.0 {
                continue;
            }
            for (p, d) in [(seg.p1[off], seg.d1[off]), (seg.p2[off], seg.d2[off])] {
                if p == NONE {
                    continue;
                }
                let ps = (p >> shift) as usize;
                if ps == s {
                    chunk[(p & mask) as usize] += a * d;
                } else {
                    frontier[ps].push(((p & mask) as u32, a * d));
                }
            }
        }
    }

    fn merge(&self, chunk: &mut Vec<f64>, list: &[(u32, f64)]) {
        for &(off, v) in list {
            chunk[off as usize] += v;
        }
    }
}

/// Parallel value sweep: the shared schedule with the adjoint kernel —
/// bit-identical to [`gradient_serial`].
pub(crate) fn gradient_parallel(
    tape: &Tape,
    out: u64,
    threads: usize,
    ctx: &ReplayCtx<'_>,
) -> Result<(Gradient, SweepStats), AdError> {
    check_seed(tape, out)?;
    let last_seg = (out >> tape.store().shift()) as usize;
    // A single segment has no cross-segment frontier; nothing to merge.
    let workers = threads.saturating_sub(1).min(last_seg);
    if workers == 0 {
        return gradient_serial(tape, out, ctx);
    }
    let (chunks, stats) = run_frontier_sweep(tape, out, workers, &GradientKernel, ctx)?;
    let mut adj = Vec::with_capacity(tape.len());
    for chunk in chunks {
        adj.extend(chunk);
    }
    adj.resize(tape.len(), 0.0);
    Ok((Gradient { adj }, stats))
}

/// Value sweep with automatic serial/parallel choice. Bit-identical either
/// way; parallel only pays off when several segments and cores exist.
pub(crate) fn gradient_auto(
    tape: &Tape,
    out: u64,
    cfg: SweepConfig,
    ctx: &ReplayCtx<'_>,
) -> Result<(Gradient, SweepStats), AdError> {
    let threads = cfg.resolve();
    let (g, stats) = if threads >= 2 && (out >> tape.store().shift()) >= 1 {
        gradient_parallel(tape, out, threads, ctx)?
    } else {
        gradient_serial(tape, out, ctx)?
    };
    Ok((g, finalize_stats(stats, tape, ctx)))
}

// ---- structural sweep ----------------------------------------------------

#[inline]
fn bit_set(words: &mut [u64], off: usize) {
    words[off >> 6] |= 1u64 << (off & 63);
}

#[inline]
fn bit_get(words: &[u64], off: usize) -> bool {
    words[off >> 6] & (1u64 << (off & 63)) != 0
}

/// Serial structural sweep (seed algorithm over segments).
pub(crate) fn reachable_serial(
    tape: &Tape,
    out: u64,
    ctx: &ReplayCtx<'_>,
) -> Result<(Vec<bool>, SweepStats), AdError> {
    check_seed(tape, out)?;
    let store = tape.store();
    let shift = store.shift();
    let mut reach = vec![false; tape.len()];
    reach[out as usize] = true;
    let last_seg = (out >> shift) as usize;
    for s in (0..=last_seg).rev() {
        let seg = store.view(s, Dir::Rev, ctx)?;
        let base = s << shift;
        let top = if s == last_seg {
            out as usize - base
        } else {
            seg.len() - 1
        };
        for off in (0..=top).rev() {
            if !reach[base + off] {
                continue;
            }
            let p1 = seg.p1[off];
            if p1 != NONE {
                reach[p1 as usize] = true;
            }
            let p2 = seg.p2[off];
            if p2 != NONE {
                reach[p2 as usize] = true;
            }
        }
    }
    let stats = SweepStats {
        segments: last_seg + 1,
        threads: 1,
        cross_contribs: 0,
        parallel: false,
        ..constant_stats()
    };
    Ok((reach, stats))
}

/// Monotone OR over per-segment bitset chunks (one bit per node).
struct ReachKernel;

impl SweepKernel for ReachKernel {
    type Chunk = Vec<u64>;
    type Item = u32;

    fn new_chunk(&self, nodes: usize) -> Vec<u64> {
        vec![0u64; nodes.div_ceil(64)]
    }

    fn seed(&self, chunk: &mut Vec<u64>, off: usize) {
        bit_set(chunk, off);
    }

    fn sweep_segment(
        &self,
        seg: &Segment,
        s: usize,
        shift: u32,
        mask: u64,
        chunk: &mut Vec<u64>,
        frontier: &mut [Vec<u32>],
    ) {
        for off in (0..seg.len()).rev() {
            if !bit_get(chunk, off) {
                continue;
            }
            for p in [seg.p1[off], seg.p2[off]] {
                if p == NONE {
                    continue;
                }
                let ps = (p >> shift) as usize;
                if ps == s {
                    bit_set(chunk, (p & mask) as usize);
                } else {
                    frontier[ps].push((p & mask) as u32);
                }
            }
        }
    }

    fn merge(&self, chunk: &mut Vec<u64>, list: &[u32]) {
        for &off in list {
            bit_set(chunk, off as usize);
        }
    }
}

/// Parallel structural sweep: the shared schedule with the bitset kernel.
/// Reachability is a monotone OR, so any merge order gives the same bits;
/// the deterministic schedule of the value sweep is reused regardless.
pub(crate) fn reachable_parallel(
    tape: &Tape,
    out: u64,
    threads: usize,
    ctx: &ReplayCtx<'_>,
) -> Result<(Vec<bool>, SweepStats), AdError> {
    check_seed(tape, out)?;
    let store = tape.store();
    let last_seg = (out >> store.shift()) as usize;
    let workers = threads.saturating_sub(1).min(last_seg);
    if workers == 0 {
        return reachable_serial(tape, out, ctx);
    }
    let (chunks, stats) = run_frontier_sweep(tape, out, workers, &ReachKernel, ctx)?;
    let mut reach = Vec::with_capacity(tape.len());
    for (s, words) in chunks.into_iter().enumerate() {
        let n = store.seg_nodes(s);
        reach.extend((0..n).map(|off| bit_get(&words, off)));
    }
    reach.resize(tape.len(), false);
    Ok((reach, stats))
}

/// Structural sweep with automatic serial/parallel choice.
pub(crate) fn reachable_auto(
    tape: &Tape,
    out: u64,
    cfg: SweepConfig,
    ctx: &ReplayCtx<'_>,
) -> Result<(Vec<bool>, SweepStats), AdError> {
    let threads = cfg.resolve();
    let (r, stats) = if threads >= 2 && (out >> tape.store().shift()) >= 1 {
        reachable_parallel(tape, out, threads, ctx)?
    } else {
        reachable_serial(tape, out, ctx)?
    };
    Ok((r, finalize_stats(stats, tape, ctx)))
}
