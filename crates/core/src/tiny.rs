//! A miniature demonstration application: 1-D heat diffusion.
//!
//! `Heat1d` is the "hello world" of the scrutiny API, exhibiting in a few
//! dozen lines the three element behaviours the paper observed in NPB:
//!
//! * live state (`temp[0..n+2]`, including both boundary cells) — critical;
//! * allocation padding (`temp[n+2..n+4]`, declared but never indexed,
//!   like `x[NA..NA+2]` in CG) — uncritical;
//! * a scratch array rewritten every iteration before any read
//!   (`workspace`) — uncritical *despite being live data moments earlier*.

use crate::app::{RunOutcome, ScrutinyApp};
use crate::site::{CkptSite, VarRefMut};
use crate::spec::{AppSpec, VarSpec};
use scrutiny_ad::{Adj, Real};

/// Explicit 1-D heat equation with ghost boundaries and tail padding.
pub struct Heat1d {
    /// Interior cells.
    pub n: usize,
    /// Total diffusion steps.
    pub niter: usize,
    /// Checkpoint boundary (main-loop index).
    pub ckpt_at: usize,
}

impl Heat1d {
    /// New instance; checkpoints at the boundary of iteration `ckpt_at`.
    pub fn new(n: usize, niter: usize, ckpt_at: usize) -> Self {
        assert!(n >= 2 && niter >= 1 && ckpt_at < niter);
        Heat1d { n, niter, ckpt_at }
    }

    fn run_generic<R: Real>(&self, site: &mut dyn CkptSite<R>) -> RunOutcome<R> {
        let n = self.n;
        // temp[0] and temp[n+1] are fixed boundary cells; the final two
        // slots are padding that no loop ever touches (a deliberate
        // "imperfect coding" artifact, cf. paper §IV.B).
        let mut temp: Vec<R> = (0..n + 4)
            .map(|i| {
                if i < n + 2 {
                    R::lit((std::f64::consts::PI * i as f64 / (n + 1) as f64).sin())
                } else {
                    R::lit(777.0)
                }
            })
            .collect();
        let mut workspace: Vec<R> = vec![R::zero(); n];
        let mut it_state = vec![0i64];

        let alpha = 0.1;
        for it in 0..self.niter {
            if it == self.ckpt_at {
                it_state[0] = it as i64;
                let mut views = [
                    VarRefMut::F64(&mut temp),
                    VarRefMut::F64(&mut workspace),
                    VarRefMut::I64(&mut it_state),
                ];
                site.at_boundary(it, &mut views);
            }
            for i in 1..=n {
                workspace[i - 1] = temp[i - 1] - temp[i] * 2.0 + temp[i + 1];
            }
            for i in 1..=n {
                temp[i] += workspace[i - 1] * alpha;
            }
        }

        let mut out = (temp[0] + temp[n + 1]) * 0.5;
        for t in temp.iter().take(n + 1).skip(1) {
            out += *t;
        }
        RunOutcome { output: out }
    }
}

impl ScrutinyApp for Heat1d {
    fn spec(&self) -> AppSpec {
        AppSpec {
            name: "HEAT1D".into(),
            class: format!("n={}", self.n),
            vars: vec![
                VarSpec::f64("temp", &[self.n + 4]),
                VarSpec::f64("workspace", &[self.n]),
                VarSpec::int_scalar("it"),
            ],
        }
    }

    fn checkpoint_iter(&self) -> usize {
        self.ckpt_at
    }

    fn run_f64(&self, site: &mut dyn CkptSite<f64>) -> RunOutcome<f64> {
        self.run_generic(site)
    }

    fn run_ad(&self, site: &mut dyn CkptSite<Adj>) -> RunOutcome<Adj> {
        self.run_generic(site)
    }

    fn tape_capacity_hint(&self) -> usize {
        self.n * (self.niter + 4) * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::site::NoopSite;

    #[test]
    fn deterministic_output() {
        let app = Heat1d::new(16, 10, 5);
        let a = app.run_f64(&mut NoopSite).output;
        let b = app.run_f64(&mut NoopSite).output;
        assert_eq!(a, b);
        assert!(a.is_finite());
    }

    #[test]
    fn diffusion_preserves_interior_energy_roughly() {
        // With fixed sin boundary at zero ends, total heat decays toward
        // the boundary average; the output must stay bounded.
        let app = Heat1d::new(32, 50, 10);
        let out = app.run_f64(&mut NoopSite).output;
        assert!(out > 0.0 && out < 32.0);
    }

    #[test]
    fn f64_and_ad_runs_agree() {
        let app = Heat1d::new(8, 6, 3);
        let f = app.run_f64(&mut NoopSite).output;
        let session = scrutiny_ad::TapeSession::new();
        let a = app.run_ad(&mut NoopSite).output.value();
        drop(session);
        assert!((f - a).abs() < 1e-12);
    }
}
