//! Storage planning: criticality maps → per-variable checkpoint plans.

use crate::analysis::AnalysisReport;
use scrutiny_ckpt::{AtRest, Bitmap, CodecConfig, DType, LoCodec, Regions, VarPlan};

/// How to turn criticality into storage decisions.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Policy {
    /// Store everything (the baseline of Table III's "Original" column).
    Full,
    /// Drop elements whose output derivative is exactly zero — the
    /// paper's method (Table III's "Optimized" column).
    PrunedValue,
    /// Drop only elements with no structural data-flow path to the output
    /// (conservative w.r.t. value cancellation).
    PrunedStructural,
    /// Precision tiering (paper §VII): keep f64 where `|∂out/∂e| ≥ hi`,
    /// downcast to f32 where `0 < |∂out/∂e| < hi`, drop where zero.
    Tiered {
        /// Gradient-magnitude threshold separating f64 from f32 storage.
        hi_threshold: f64,
    },
    /// [`Policy::Tiered`] plus the storage codec: the lo tier stores
    /// truncated-mantissa f64 (`keep` most-significant bytes of the 8,
    /// see [`LoCodec::Trunc`]) instead of f32, and published objects are
    /// wrapped in the self-written `SCRUTCZB` at-rest container
    /// ([`AtRest::Auto`] picks the smaller of bit-plane and RLE per
    /// object, falling back to stored). Lossy only in the AD-proven lo
    /// tier — restart verification (§IV.C) is the acceptance gate.
    TieredCompressed {
        /// Gradient-magnitude threshold separating the exact hi tier
        /// from the truncated lo tier.
        hi_threshold: f64,
        /// Most-significant bytes kept per lo-tier f64 (2..=7).
        keep: u8,
    },
}

/// The storage codec `policy` implies: [`Policy::TieredCompressed`]
/// enables truncated-mantissa lo storage plus at-rest compression; every
/// other policy is the strict passthrough (byte streams identical to a
/// build without compression).
pub fn codec_for(policy: Policy) -> CodecConfig {
    match policy {
        Policy::TieredCompressed { keep, .. } => CodecConfig {
            at_rest: AtRest::Auto,
            lo: LoCodec::Trunc { keep },
        },
        _ => CodecConfig::default(),
    }
}

/// Produce one [`VarPlan`] per checkpoint variable under `policy`.
///
/// Integer control state is always stored fully: the paper classifies
/// loop indices and index arrays as critical by definition, and they are
/// a negligible fraction of checkpoint bytes.
pub fn plans_for(report: &AnalysisReport, policy: Policy) -> Vec<VarPlan> {
    report
        .vars
        .iter()
        .map(|v| {
            if v.spec.dtype == DType::I64 {
                return VarPlan::Full;
            }
            match policy {
                Policy::Full => VarPlan::Full,
                Policy::PrunedValue => VarPlan::Pruned(Regions::from_bitmap(&v.value_map)),
                Policy::PrunedStructural => {
                    VarPlan::Pruned(Regions::from_bitmap(&v.structural_map))
                }
                Policy::Tiered { hi_threshold } | Policy::TieredCompressed { hi_threshold, .. } => {
                    if v.spec.dtype == DType::C128 {
                        // Mixed-precision complex storage is not supported;
                        // fall back to the paper's pruning.
                        return VarPlan::Pruned(Regions::from_bitmap(&v.value_map));
                    }
                    let n = v.total();
                    let hi = Bitmap::from_fn(n, |i| v.grad_mag[i] >= hi_threshold);
                    let lo =
                        Bitmap::from_fn(n, |i| v.grad_mag[i] > 0.0 && v.grad_mag[i] < hi_threshold);
                    VarPlan::Tiered {
                        hi: Regions::from_bitmap(&hi),
                        lo: Regions::from_bitmap(&lo),
                    }
                }
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::scrutinize;
    use crate::tiny::Heat1d;

    fn report() -> AnalysisReport {
        scrutinize(&Heat1d::new(16, 8, 4)).unwrap()
    }

    #[test]
    fn full_policy_stores_everything() {
        let r = report();
        let plans = plans_for(&r, Policy::Full);
        assert!(plans.iter().all(|p| matches!(p, VarPlan::Full)));
    }

    #[test]
    fn pruned_value_drops_uncritical() {
        let r = report();
        let plans = plans_for(&r, Policy::PrunedValue);
        // temp: 18 of 20 critical.
        let VarPlan::Pruned(ref regions) = plans[0] else {
            panic!("expected pruned plan for temp")
        };
        assert_eq!(regions.covered(), 18);
        // workspace: nothing critical.
        let VarPlan::Pruned(ref regions) = plans[1] else {
            panic!("expected pruned plan for workspace")
        };
        assert_eq!(regions.covered(), 0);
        // integer state is always full.
        assert!(matches!(plans[2], VarPlan::Full));
    }

    #[test]
    fn structural_is_no_smaller_than_value() {
        let r = report();
        let pv = plans_for(&r, Policy::PrunedValue);
        let ps = plans_for(&r, Policy::PrunedStructural);
        for (a, b) in pv.iter().zip(&ps) {
            if let (VarPlan::Pruned(ra), VarPlan::Pruned(rb)) = (a, b) {
                assert!(rb.covered() >= ra.covered());
            }
        }
    }

    #[test]
    fn tiered_partitions_critical_elements() {
        let r = report();
        let plans = plans_for(&r, Policy::Tiered { hi_threshold: 0.5 });
        let VarPlan::Tiered { ref hi, ref lo } = plans[0] else {
            panic!("expected tiered plan for temp")
        };
        let crit = match &plans_for(&r, Policy::PrunedValue)[0] {
            VarPlan::Pruned(p) => p.covered(),
            _ => unreachable!(),
        };
        assert_eq!(hi.covered() + lo.covered(), crit);
        assert!(hi.intersect(lo).is_empty());
    }

    #[test]
    fn tiered_compressed_plans_match_tiered_and_carry_a_codec() {
        let r = report();
        let lossless = plans_for(&r, Policy::Tiered { hi_threshold: 0.5 });
        let lossy = plans_for(
            &r,
            Policy::TieredCompressed {
                hi_threshold: 0.5,
                keep: 4,
            },
        );
        // Same region partition — only the storage codec differs.
        assert_eq!(lossless, lossy);
        let codec = codec_for(Policy::TieredCompressed {
            hi_threshold: 0.5,
            keep: 4,
        });
        assert_eq!(codec.at_rest, AtRest::Auto);
        assert_eq!(codec.lo, LoCodec::Trunc { keep: 4 });
        assert!(codec.validate().is_ok());
        // Lossless policies imply the strict passthrough.
        assert!(codec_for(Policy::PrunedValue).is_passthrough());
        assert!(codec_for(Policy::Tiered { hi_threshold: 0.5 }).is_passthrough());
    }

    #[test]
    fn tiered_threshold_extremes() {
        let r = report();
        // Threshold 0: everything critical lands in hi.
        let plans = plans_for(&r, Policy::Tiered { hi_threshold: 0.0 });
        let VarPlan::Tiered { ref hi, ref lo } = plans[0] else {
            panic!()
        };
        assert!(lo.is_empty());
        assert!(hi.covered() > 0);
        // Huge threshold: everything critical lands in lo.
        let plans = plans_for(
            &r,
            Policy::Tiered {
                hi_threshold: 1e300,
            },
        );
        let VarPlan::Tiered { ref hi, ref lo } = plans[0] else {
            panic!()
        };
        assert!(hi.is_empty());
        assert!(lo.covered() > 0);
    }
}
