//! The scrutinizer: one AD run + reverse sweeps ⇒ per-element criticality
//! for every checkpoint variable.
//!
//! The AD pass is the method's bottleneck, so this layer drives the
//! segmented tape's **parallel** sweeps: the value-gradient sweep and the
//! structural-reachability sweep run concurrently on two threads, and each
//! sweep internally merges cross-segment adjoint frontiers on worker
//! threads (see `scrutiny_ad::sweep`). Results are bit-identical to the
//! serial seed sweep by construction. Recording failures (tape overflow)
//! and bad sweep seeds surface as typed [`AdError`]s instead of aborting a
//! long NPB record.
//!
//! Two analyzers share this front door, selected by
//! [`ScrutinyOptions::analyzer`]:
//!
//! * [`Analyzer::Ad`] — the paper's method: zero adjoint ⇔ uncritical.
//! * [`Analyzer::DataDep`] — static data-dependency scrutiny
//!   (`scrutiny_ad::datadep`): an element is critical iff a chain of
//!   recorded edges connects it to the output, no derivative values
//!   consulted. It may over-approximate (mark extra elements critical) but
//!   can never under-approximate — a non-zero adjoint only flows along
//!   recorded edges — so its error direction is safe for checkpointing.
//! * [`Analyzer::Both`] — run both concurrently and cross-check. The full
//!   differential result, including a typed [`Disagreement`] list with
//!   witness paths, comes from [`scrutinize_differential`].

use crate::app::ScrutinyApp;
use crate::site::{LeafRange, LeafSite};
use crate::spec::{AppSpec, VarSpec};
use scrutiny_ad::tape::TapeStats;
use scrutiny_ad::{
    AdError, Adj, DataDep, SweepConfig, SweepStats, Tape, TapeCheckpointConfig, TapeConfig,
    TapeSession, Witness,
};
use scrutiny_ckpt::{Bitmap, DType, Regions};
use scrutiny_obs::Recorder;
use std::collections::HashMap;
use std::time::Instant;

/// Criticality classification of one checkpoint variable.
#[derive(Debug)]
pub struct VarCriticality {
    /// The variable's spec (name, dtype, shape).
    pub spec: VarSpec,
    /// Criticality under the selected analyzer's criterion: for
    /// [`Analyzer::Ad`], bit set ⇔ `∂output/∂element ≠ 0` (the paper's
    /// criterion); for [`Analyzer::DataDep`], bit set ⇔ structurally
    /// live. Integer variables are control state: always critical.
    pub value_map: Bitmap,
    /// Structural criticality: bit set ⇔ a data-flow path reaches the
    /// output (superset of `value_map`; equal to it for
    /// [`Analyzer::DataDep`] reports, whose criterion *is* structural).
    pub structural_map: Bitmap,
    /// Per-element gradient magnitude (max over components for complex;
    /// `+∞` for integer control state). Drives precision tiering. The
    /// data-dependency analyzer has no magnitudes: it reports `+∞` for
    /// live elements and `0` for dead ones, so tiering degenerates to
    /// full precision for everything it keeps — the safe direction.
    pub grad_mag: Vec<f64>,
}

impl VarCriticality {
    /// Total elements.
    pub fn total(&self) -> usize {
        self.value_map.len()
    }

    /// Uncritical element count under the value criterion (Table II).
    pub fn uncritical(&self) -> usize {
        self.value_map.count_zeros()
    }

    /// Critical element count under the value criterion.
    pub fn critical(&self) -> usize {
        self.value_map.count_ones()
    }

    /// Uncritical rate (Table II's last column).
    pub fn uncritical_rate(&self) -> f64 {
        self.value_map.uncritical_rate()
    }

    /// Critical regions (the auxiliary-file form) under the value
    /// criterion.
    pub fn regions(&self) -> Regions {
        Regions::from_bitmap(&self.value_map)
    }

    /// Elements where the two analyses disagree (structurally reachable
    /// but value-gradient exactly zero).
    pub fn cancellation_only(&self) -> Vec<usize> {
        self.structural_map.diff_indices(&self.value_map)
    }
}

/// Which analysis backend [`scrutinize_with`] runs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Analyzer {
    /// The paper's AD value criterion: uncritical ⇔ zero adjoint.
    #[default]
    Ad,
    /// Static data-dependency scrutiny: uncritical ⇔ no recorded
    /// data-flow path to the output. Over-approximates [`Analyzer::Ad`]
    /// in the safe direction; needs no adjoint values (1 bit/node of
    /// sweep state instead of 8 bytes/node).
    DataDep,
    /// Run both concurrently and cross-check; [`scrutinize_with`] then
    /// returns the AD report, while [`scrutinize_differential`] exposes
    /// both reports plus the typed disagreement list.
    Both,
}

/// Everything the analysis learned about one application.
#[derive(Debug)]
pub struct AnalysisReport {
    /// The application's checkpoint spec.
    pub app: AppSpec,
    /// The backend that produced this report's verdicts.
    pub analyzer: Analyzer,
    /// Iteration at whose boundary the analysis checkpoint was placed.
    pub ckpt_iter: usize,
    /// Primal output value of the AD run.
    pub output_value: f64,
    /// Size and segmentation of the recorded tape (`bytes` is real
    /// allocated capacity; `sweep_bytes` the transient sweep memory).
    pub tape_stats: TapeStats,
    /// What the criterion sweep did: segments visited, threads used,
    /// contributions routed through cross-segment frontiers. The value
    /// sweep for [`Analyzer::Ad`] reports, the structural sweep for
    /// [`Analyzer::DataDep`].
    pub sweep: SweepStats,
    /// Same, for the structural-reachability sweep.
    pub reach_sweep: SweepStats,
    /// Wall-clock seconds for record + sweeps.
    pub analysis_seconds: f64,
    /// Per-variable criticality, in spec order.
    pub vars: Vec<VarCriticality>,
    /// Variable index by name, so [`AnalysisReport::var`] is O(1).
    by_name: HashMap<String, usize>,
}

impl AnalysisReport {
    /// Look up one variable's criticality by name.
    pub fn var(&self, name: &str) -> Option<&VarCriticality> {
        self.by_name.get(name).map(|&i| &self.vars[i])
    }

    /// Aggregate uncritical elements across all variables.
    pub fn total_uncritical(&self) -> usize {
        self.vars.iter().map(VarCriticality::uncritical).sum()
    }

    /// Aggregate elements across all variables.
    pub fn total_elems(&self) -> usize {
        self.vars.iter().map(VarCriticality::total).sum()
    }
}

/// Tuning knobs for [`scrutinize_with`].
#[derive(Clone, Debug)]
pub struct ScrutinyOptions {
    /// Tape-node capacity hint; `None` uses the app's own
    /// [`ScrutinyApp::tape_capacity_hint`].
    pub capacity: Option<usize>,
    /// Tape segment length (power of two). Smaller segments expose more
    /// sweep parallelism; the default suits the NPB kernels.
    pub segment_len: usize,
    /// Threads per reverse sweep (`0` = one per available core, `1` =
    /// serial). The sweeps additionally run concurrently with each
    /// other.
    pub threads: usize,
    /// Recording budget in tape nodes; exceeding it yields
    /// [`AdError::TapeOverflow`].
    pub node_limit: u64,
    /// Analysis backend: the AD value criterion (default), the static
    /// data-dependency analyzer, or both cross-checked.
    pub analyzer: Analyzer,
    /// Bounded-memory tape checkpointing: keep at most `ncheckpoints`
    /// segments resident (0 = auto ≈ log2(segments)), discarding the rest
    /// during recording and re-recording them on demand — by re-running
    /// the application — during the sweeps. Verdicts stay bit-identical
    /// to the unbounded analysis; peak tape residency drops from the
    /// full recording to `ncheckpoints × segment` bytes. Requires the
    /// application's AD run to be deterministic (every NPB kernel is);
    /// nondeterminism is caught as [`AdError::ReplayDivergence`].
    pub tape_checkpoints: Option<TapeCheckpointConfig>,
    /// Observability sink: record/sweep phase spans and the sweep gauges
    /// the report's [`SweepStats`] views are derived from. The default is
    /// [`Recorder::disabled`]; the analysis then uses a small private
    /// recorder internally (stats still work, nothing is exported).
    pub recorder: Recorder,
}

impl Default for ScrutinyOptions {
    fn default() -> Self {
        let tape = TapeConfig::default();
        ScrutinyOptions {
            capacity: None,
            segment_len: tape.segment_len,
            threads: 0,
            node_limit: tape.node_limit,
            analyzer: Analyzer::Ad,
            tape_checkpoints: None,
            recorder: Recorder::disabled(),
        }
    }
}

/// How one analyzer disagreement is classified.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DisagreementKind {
    /// The adjoint is exactly zero but a data-flow path reaches the
    /// output: exact cancellation, multiplication by a tracked zero, or a
    /// min/max loser's zero partial. The static analyzer keeps the
    /// element; checkpoints grow but restarts stay correct — the safe
    /// over-approximation.
    ValueDeadStructurallyLive,
    /// The AD sweep found a non-zero adjoint on an element the static
    /// analyzer calls dead. Impossible by construction (adjoints flow
    /// only along recorded edges); its presence is a bug in one analyzer,
    /// and the differential harness asserts it never occurs.
    AdCriticalDataDepDead,
}

/// One group of per-element verdict mismatches between the two analyzers,
/// for a single variable and direction.
#[derive(Clone, Debug)]
pub struct Disagreement {
    /// The checkpoint variable the mismatching elements belong to.
    pub var: String,
    /// Which way the analyzers disagree.
    pub kind: DisagreementKind,
    /// Element indices (within the variable) whose verdicts differ.
    pub elems: Vec<usize>,
    /// For structurally-live disagreements: the recorded data-flow path
    /// that keeps the first mismatching element alive, from its leaf node
    /// to the output. `None` when no path exists (violations).
    pub witness: Option<Witness>,
}

/// Both analyzers' reports over one recording, plus every classified
/// verdict mismatch. Produced by [`scrutinize_differential`].
#[derive(Debug)]
pub struct DifferentialReport {
    /// The AD value-criterion report.
    pub ad: AnalysisReport,
    /// The static data-dependency report over the *same* tape.
    pub datadep: AnalysisReport,
    /// Every per-variable verdict mismatch, classified and witnessed.
    pub disagreements: Vec<Disagreement>,
}

impl DifferentialReport {
    /// Disagreements that violate the safety invariant (AD-critical but
    /// datadep-dead). Always empty unless an analyzer is broken.
    pub fn safety_violations(&self) -> Vec<&Disagreement> {
        self.disagreements
            .iter()
            .filter(|d| d.kind == DisagreementKind::AdCriticalDataDepDead)
            .collect()
    }

    /// True when datadep-critical ⊇ ad-critical holds everywhere.
    pub fn is_safe(&self) -> bool {
        self.safety_violations().is_empty()
    }

    /// Total elements the static analyzer keeps beyond the AD verdict.
    pub fn over_approximated_elems(&self) -> usize {
        self.disagreements
            .iter()
            .filter(|d| d.kind == DisagreementKind::ValueDeadStructurallyLive)
            .map(|d| d.elems.len())
            .sum()
    }
}

/// Scrutinize every element of every checkpoint variable of `app`.
///
/// Runs the application once under AD with leaves injected at the
/// checkpoint boundary, then performs the reverse value sweep and the
/// structural sweep (concurrently, each possibly parallel internally).
/// See the crate docs for the method.
pub fn scrutinize(app: &dyn ScrutinyApp) -> Result<AnalysisReport, AdError> {
    scrutinize_with(app, &ScrutinyOptions::default())
}

/// [`scrutinize`] with an explicit tape capacity (nodes).
pub fn scrutinize_with_capacity(
    app: &dyn ScrutinyApp,
    capacity: usize,
) -> Result<AnalysisReport, AdError> {
    scrutinize_with(
        app,
        &ScrutinyOptions {
            capacity: Some(capacity),
            ..ScrutinyOptions::default()
        },
    )
}

/// [`scrutinize`] with full control over segmentation, sweep threads and
/// the analysis backend.
pub fn scrutinize_with(
    app: &dyn ScrutinyApp,
    opts: &ScrutinyOptions,
) -> Result<AnalysisReport, AdError> {
    match opts.analyzer {
        Analyzer::Both => return scrutinize_differential(app, opts).map(|d| d.ad),
        Analyzer::Ad | Analyzer::DataDep => {}
    }
    let t0 = Instant::now();
    let obs = effective_recorder(opts);
    let rec = record_app(app, opts, &obs);
    let cfg = SweepConfig {
        threads: opts.threads,
    };
    let sweeps_span = scrutiny_obs::span!(obs, "core.analysis.sweeps");
    match opts.analyzer {
        Analyzer::Ad => {
            let (grads, reach) = if opts.tape_checkpoints.is_some() {
                // Checkpointed tape: the sweeps run sequentially — each
                // replays evicted segments through a re-run of the
                // application, and running them concurrently would fight
                // over the same residency budget.
                let replay = app_replayer(app);
                let (grads, _) = rec
                    .tape
                    .gradient_sweep_replay_observed(rec.output, cfg, &replay, &obs)?;
                let (reach, _) = rec
                    .tape
                    .reachable_sweep_replay_observed(rec.output, cfg, &replay, &obs)?;
                (grads, reach)
            } else {
                // The two sweeps are independent; run them concurrently.
                // Each may additionally parallelize its own frontier
                // merging. They report into the recorder themselves
                // (spans `ad.sweep.value` / `ad.sweep.reach`, gauges
                // `ad.sweep.<kind>.*`).
                let (value_res, reach_res) = std::thread::scope(|scope| {
                    let reach =
                        scope.spawn(|| rec.tape.reachable_sweep_observed(rec.output, cfg, &obs));
                    let value = rec.tape.gradient_sweep_observed(rec.output, cfg, &obs);
                    (value, reach.join().expect("structural sweep panicked"))
                });
                (value_res?.0, reach_res?.0)
            };
            drop(sweeps_span);
            let vars = ad_vars(&rec, &grads, &reach);
            Ok(rec.report(Analyzer::Ad, &obs, ("value", "reach"), vars, t0))
        }
        Analyzer::DataDep => {
            let dd = if opts.tape_checkpoints.is_some() {
                let replay = app_replayer(app);
                rec.tape
                    .datadep_sweep_replay_observed(rec.output, cfg, &replay, &obs)?
            } else {
                rec.tape.datadep_sweep_observed(rec.output, cfg, &obs)?
            };
            drop(sweeps_span);
            let vars = datadep_vars(&rec, &dd);
            Ok(rec.report(Analyzer::DataDep, &obs, ("datadep", "datadep"), vars, t0))
        }
        Analyzer::Both => unreachable!("dispatched above"),
    }
}

/// The replay closure for bounded-memory sweeps: re-run the application's
/// AD pass exactly as [`record_app`] did (fresh leaf site, same
/// checkpoint boundary), but with the thread's replay sink — not a tape —
/// receiving the nodes. Determinism is verified per segment by digest.
fn app_replayer(app: &dyn ScrutinyApp) -> impl Fn() + '_ {
    move || {
        let mut site = LeafSite::new();
        let _ = app.run_ad(&mut site);
    }
}

/// Run *both* analyzers over one recording (value, reachability and
/// datadep sweeps concurrently in one scope) and classify every verdict
/// mismatch into a typed, witnessed [`Disagreement`].
pub fn scrutinize_differential(
    app: &dyn ScrutinyApp,
    opts: &ScrutinyOptions,
) -> Result<DifferentialReport, AdError> {
    let t0 = Instant::now();
    let obs = effective_recorder(opts);
    let rec = record_app(app, opts, &obs);
    let cfg = SweepConfig {
        threads: opts.threads,
    };
    let sweeps_span = scrutiny_obs::span!(obs, "core.analysis.sweeps");
    let (grads, reach, dd) = if opts.tape_checkpoints.is_some() {
        // Bounded-memory tape: all three sweeps share one residency
        // budget, so they run sequentially, each replaying evicted
        // segments as it walks.
        let replay = app_replayer(app);
        let (grads, _) = rec
            .tape
            .gradient_sweep_replay_observed(rec.output, cfg, &replay, &obs)?;
        let (reach, _) = rec
            .tape
            .reachable_sweep_replay_observed(rec.output, cfg, &replay, &obs)?;
        let dd = rec
            .tape
            .datadep_sweep_replay_observed(rec.output, cfg, &replay, &obs)?;
        (grads, reach, dd)
    } else {
        let (value_res, reach_res, dd_res) = std::thread::scope(|scope| {
            let reach = scope.spawn(|| rec.tape.reachable_sweep_observed(rec.output, cfg, &obs));
            let dd = scope.spawn(|| rec.tape.datadep_sweep_observed(rec.output, cfg, &obs));
            let value = rec.tape.gradient_sweep_observed(rec.output, cfg, &obs);
            (
                value,
                reach.join().expect("structural sweep panicked"),
                dd.join().expect("datadep sweep panicked"),
            )
        });
        (value_res?.0, reach_res?.0, dd_res?)
    };
    drop(sweeps_span);

    let ad_vars = ad_vars(&rec, &grads, &reach);
    let dd_vars = datadep_vars(&rec, &dd);
    let disagreements = classify_disagreements(&rec, &ad_vars, &dd_vars, &dd);

    let datadep = rec.report(Analyzer::DataDep, &obs, ("datadep", "datadep"), dd_vars, t0);
    let ad = rec.report(Analyzer::Ad, &obs, ("value", "reach"), ad_vars, t0);
    Ok(DifferentialReport {
        ad,
        datadep,
        disagreements,
    })
}

/// Maximum witness-path nodes attached to a disagreement; the hop count
/// stays exact beyond it.
const WITNESS_MAX_NODES: usize = 16;

/// One finished recording, before any sweep interpretation.
struct Recorded {
    spec: AppSpec,
    ckpt_iter: usize,
    tape: Tape,
    output: Adj,
    ranges: Vec<LeafRange>,
}

impl Recorded {
    /// Interpret one analyzer's sweep results as an [`AnalysisReport`]
    /// over this recording. Borrowing lets the differential path build
    /// two reports over the same tape.
    ///
    /// The report's [`SweepStats`] are not plumbed through as arguments:
    /// the observed sweeps exported them as `ad.sweep.<kind>.*` gauges,
    /// and this reads them back via [`SweepStats::from_snapshot`] — the
    /// stats struct is a *view* over obs data. `kinds` names the
    /// `(value, structural)` sweep kinds this report describes.
    fn report(
        &self,
        analyzer: Analyzer,
        obs: &Recorder,
        kinds: (&str, &str),
        vars: Vec<VarCriticality>,
        t0: Instant,
    ) -> AnalysisReport {
        let by_name = vars
            .iter()
            .enumerate()
            .map(|(i, v)| (v.spec.name.clone(), i))
            .collect();
        let snap = obs.snapshot();
        let analysis_seconds = t0.elapsed().as_secs_f64();
        obs.record("core.analysis_us", (analysis_seconds * 1e6) as u64);
        AnalysisReport {
            app: self.spec.clone(),
            analyzer,
            ckpt_iter: self.ckpt_iter,
            output_value: self.output.value(),
            tape_stats: self.tape.stats(),
            sweep: SweepStats::from_snapshot(&snap, kinds.0).unwrap_or_default(),
            reach_sweep: SweepStats::from_snapshot(&snap, kinds.1).unwrap_or_default(),
            analysis_seconds,
            vars,
            by_name,
        }
    }
}

/// The recorder an analysis reports into: the caller's when enabled,
/// otherwise a small private one — the report's stats views read from it
/// either way, nothing else escapes.
fn effective_recorder(opts: &ScrutinyOptions) -> Recorder {
    if opts.recorder.is_enabled() {
        opts.recorder.clone()
    } else {
        Recorder::with_capacity(256)
    }
}

/// Run the application once under AD with leaves injected at the
/// checkpoint boundary.
fn record_app(app: &dyn ScrutinyApp, opts: &ScrutinyOptions, obs: &Recorder) -> Recorded {
    let spec = app.spec();
    let record_span = scrutiny_obs::span!(obs, "core.analysis.record", app = spec.name.as_str());
    let session = TapeSession::with_config(TapeConfig {
        capacity: opts.capacity.unwrap_or_else(|| app.tape_capacity_hint()),
        segment_len: opts.segment_len,
        node_limit: opts.node_limit,
        checkpoint: opts.tape_checkpoints,
    });
    let mut site = LeafSite::new();
    let outcome = app.run_ad(&mut site);
    let tape = session.finish();
    let shape = tape.stats();
    obs.set_gauge("core.tape.nodes", shape.nodes as i64);
    obs.set_gauge("core.tape.leaves", shape.leaves as i64);
    obs.set_gauge("core.tape.segments", shape.segments as i64);
    obs.set_gauge("core.tape.bytes", shape.bytes as i64);
    drop(record_span);
    let ckpt_iter = site
        .iter
        .expect("the application never reached its checkpoint boundary");
    assert_eq!(
        site.ranges.len(),
        spec.vars.len(),
        "checkpoint site saw {} variables but the spec declares {}",
        site.ranges.len(),
        spec.vars.len()
    );
    for (vspec, range) in spec.vars.iter().zip(&site.ranges) {
        assert_eq!(
            vspec.elems(),
            range.elems,
            "variable {:?}: spec says {} elements, site saw {}",
            vspec.name,
            vspec.elems(),
            range.elems
        );
    }
    Recorded {
        spec,
        ckpt_iter,
        tape,
        output: outcome.output,
        ranges: site.ranges,
    }
}

/// Build the per-variable maps from per-node predicates, shared by both
/// analyzers: `value_bit`/`struct_bit`/`magnitude` are evaluated on each
/// element's leaf node(s); complex elements OR the bits and max the
/// magnitudes of their two components.
fn classify_vars(
    spec: &AppSpec,
    ranges: &[LeafRange],
    mut value_bit: impl FnMut(u64) -> bool,
    mut struct_bit: impl FnMut(u64) -> bool,
    mut magnitude: impl FnMut(u64) -> f64,
) -> Vec<VarCriticality> {
    let mut vars = Vec::with_capacity(spec.vars.len());
    for (vspec, range) in spec.vars.iter().zip(ranges) {
        let n = range.elems;
        let (value_map, structural_map, grad_mag) = match vspec.dtype {
            DType::I64 => {
                // Control state: the paper classifies loop indices and sort
                // keys as critical by definition (they steer execution).
                (Bitmap::full(n), Bitmap::full(n), vec![f64::INFINITY; n])
            }
            DType::F64 => {
                let mut vm = Bitmap::new(n);
                let mut sm = Bitmap::new(n);
                let mut gm = vec![0.0; n];
                for (i, g) in gm.iter_mut().enumerate() {
                    let node = range.start + i as u64;
                    *g = magnitude(node);
                    if value_bit(node) {
                        vm.set(i, true);
                    }
                    if struct_bit(node) {
                        sm.set(i, true);
                    }
                }
                (vm, sm, gm)
            }
            DType::C128 => {
                let mut vm = Bitmap::new(n);
                let mut sm = Bitmap::new(n);
                let mut gm = vec![0.0; n];
                for (i, g) in gm.iter_mut().enumerate() {
                    let re = range.start + 2 * i as u64;
                    let im = re + 1;
                    *g = magnitude(re).max(magnitude(im));
                    if value_bit(re) || value_bit(im) {
                        vm.set(i, true);
                    }
                    if struct_bit(re) || struct_bit(im) {
                        sm.set(i, true);
                    }
                }
                (vm, sm, gm)
            }
        };
        vars.push(VarCriticality {
            spec: vspec.clone(),
            value_map,
            structural_map,
            grad_mag,
        });
    }
    vars
}

/// AD verdicts: value bit from the adjoint, structural bit from
/// reachability, magnitude from |adjoint|.
fn ad_vars(rec: &Recorded, grads: &scrutiny_ad::Gradient, reach: &[bool]) -> Vec<VarCriticality> {
    classify_vars(
        &rec.spec,
        &rec.ranges,
        |n| grads.of_node(n) != 0.0,
        |n| reach[n as usize],
        |n| grads.of_node(n).abs(),
    )
}

/// Data-dependency verdicts: liveness is both the value criterion and the
/// structural map; magnitudes are `+∞` for live elements (no adjoints).
fn datadep_vars(rec: &Recorded, dd: &DataDep) -> Vec<VarCriticality> {
    classify_vars(
        &rec.spec,
        &rec.ranges,
        |n| dd.live(n),
        |n| dd.live(n),
        |n| if dd.live(n) { f64::INFINITY } else { 0.0 },
    )
}

/// Compare the two analyzers' `value_map`s and group every differing
/// element into a per-variable, per-direction [`Disagreement`], attaching
/// a witness path for the first structurally-live element of each group.
fn classify_disagreements(
    rec: &Recorded,
    ad: &[VarCriticality],
    dd_vars: &[VarCriticality],
    dd: &DataDep,
) -> Vec<Disagreement> {
    let mut out = Vec::new();
    for ((a, d), range) in ad.iter().zip(dd_vars).zip(&rec.ranges) {
        let mut over = Vec::new();
        let mut viol = Vec::new();
        for i in d.value_map.diff_indices(&a.value_map) {
            if d.value_map.get(i) {
                over.push(i);
            } else {
                viol.push(i);
            }
        }
        if let Some(&first) = over.first() {
            let witness = live_leaf_node(range, first, dd)
                .and_then(|node| dd.witness_path(&rec.tape, node, WITNESS_MAX_NODES));
            out.push(Disagreement {
                var: a.spec.name.clone(),
                kind: DisagreementKind::ValueDeadStructurallyLive,
                elems: over,
                witness,
            });
        }
        if !viol.is_empty() {
            out.push(Disagreement {
                var: a.spec.name.clone(),
                kind: DisagreementKind::AdCriticalDataDepDead,
                elems: viol,
                witness: None,
            });
        }
    }
    out
}

/// The live leaf node backing element `i` of a variable (for complex
/// elements, whichever component is live).
fn live_leaf_node(range: &LeafRange, i: usize, dd: &DataDep) -> Option<u64> {
    match range.per_elem {
        1 => Some(range.start + i as u64),
        2 => {
            let re = range.start + 2 * i as u64;
            if dd.live(re) {
                Some(re)
            } else {
                Some(re + 1)
            }
        }
        _ => None, // integer control state records no leaves
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tiny::Heat1d;

    #[test]
    fn heat1d_criticality_matches_construction() {
        let app = Heat1d::new(16, 8, 4);
        let report = scrutinize(&app).unwrap();
        assert_eq!(report.analyzer, Analyzer::Ad);
        // temp: interior + both boundary cells read; the 2 tail pad cells
        // are never read.
        let temp = report.var("temp").unwrap();
        assert_eq!(temp.total(), 16 + 2 + 2);
        assert_eq!(temp.uncritical(), 2);
        assert!(!temp.value_map.get(18));
        assert!(!temp.value_map.get(19));
        // workspace: overwritten each step before any read => uncritical.
        let ws = report.var("workspace").unwrap();
        assert_eq!(ws.uncritical(), ws.total());
        // step index is control state.
        let it = report.var("it").unwrap();
        assert_eq!(it.uncritical(), 0);
        // Unknown names are None, not a panic.
        assert!(report.var("no_such_var").is_none());
    }

    #[test]
    fn structural_map_is_superset() {
        let app = Heat1d::new(12, 6, 3);
        let report = scrutinize(&app).unwrap();
        for v in &report.vars {
            for i in 0..v.total() {
                if v.value_map.get(i) {
                    assert!(
                        v.structural_map.get(i),
                        "{}[{}] value-critical but not structural",
                        v.spec.name,
                        i
                    );
                }
            }
        }
    }

    #[test]
    fn report_aggregates() {
        let app = Heat1d::new(8, 4, 2);
        let report = scrutinize(&app).unwrap();
        assert_eq!(report.ckpt_iter, 2);
        assert_eq!(
            report.total_elems(),
            report.vars.iter().map(|v| v.total()).sum::<usize>()
        );
        assert!(report.tape_stats.nodes > 0);
        assert!(report.tape_stats.segments > 0);
        assert!(report.tape_stats.bytes >= report.tape_stats.nodes * scrutiny_ad::NODE_BYTES);
        assert!(report.sweep.segments > 0);
        assert!(report.output_value.is_finite());
    }

    #[test]
    fn criticality_independent_of_checkpoint_position() {
        // The access pattern is iteration-invariant, so the maps must not
        // depend on where the checkpoint lands (mirrors the NPB reality).
        let a = scrutinize(&Heat1d::new(16, 8, 2)).unwrap();
        let b = scrutinize(&Heat1d::new(16, 8, 6)).unwrap();
        for (va, vb) in a.vars.iter().zip(&b.vars) {
            assert_eq!(va.value_map, vb.value_map, "map for {}", va.spec.name);
        }
    }

    #[test]
    fn forced_segmentation_and_parallel_sweeps_match_defaults() {
        // Drive the analysis through many tiny segments with parallel
        // sweeps; criticality must be identical to the default path.
        let app = Heat1d::new(16, 8, 4);
        let base = scrutinize(&app).unwrap();
        let seg = scrutinize_with(
            &app,
            &ScrutinyOptions {
                segment_len: 64,
                threads: 4,
                ..ScrutinyOptions::default()
            },
        )
        .unwrap();
        assert!(seg.tape_stats.segments > 1);
        assert!(seg.sweep.parallel);
        assert_eq!(seg.sweep.threads, 4);
        for (va, vb) in base.vars.iter().zip(&seg.vars) {
            assert_eq!(va.value_map, vb.value_map);
            assert_eq!(va.structural_map, vb.structural_map);
            for (ga, gb) in va.grad_mag.iter().zip(&vb.grad_mag) {
                assert_eq!(
                    ga.to_bits(),
                    gb.to_bits(),
                    "gradients must be bit-identical"
                );
            }
        }
    }

    #[test]
    fn checkpointed_tape_matches_unbounded_bit_for_bit() {
        // Bounded-memory scrutiny: evict all but a couple of segments
        // during recording and replay them on demand in the sweeps. The
        // criticality maps and every gradient bit must match the
        // unbounded analysis exactly.
        let app = Heat1d::new(16, 8, 4);
        for analyzer in [Analyzer::Ad, Analyzer::DataDep] {
            let base = scrutinize_with(
                &app,
                &ScrutinyOptions {
                    segment_len: 64,
                    analyzer,
                    ..ScrutinyOptions::default()
                },
            )
            .unwrap();
            let bounded = scrutinize_with(
                &app,
                &ScrutinyOptions {
                    segment_len: 64,
                    analyzer,
                    tape_checkpoints: Some(TapeCheckpointConfig::with_ncheckpoints(2)),
                    ..ScrutinyOptions::default()
                },
            )
            .unwrap();
            assert!(
                bounded.tape_stats.replayed_segments > 0,
                "eviction must have forced replays ({analyzer:?})"
            );
            assert!(
                bounded.tape_stats.peak_resident_bytes < bounded.tape_stats.bytes,
                "peak residency must stay below the full tape ({analyzer:?})"
            );
            for (va, vb) in base.vars.iter().zip(&bounded.vars) {
                assert_eq!(va.value_map, vb.value_map, "map for {}", va.spec.name);
                assert_eq!(va.structural_map, vb.structural_map);
                for (ga, gb) in va.grad_mag.iter().zip(&vb.grad_mag) {
                    assert_eq!(
                        ga.to_bits(),
                        gb.to_bits(),
                        "gradients must be bit-identical under replay"
                    );
                }
            }
        }
    }

    #[test]
    fn checkpointed_differential_report_agrees_with_unbounded() {
        // The differential harness (value + structural + datadep, all
        // sequential under one residency budget) must reach the same
        // verdicts as its concurrent unbounded form.
        let app = Heat1d::new(16, 8, 4);
        let base = scrutinize_differential(
            &app,
            &ScrutinyOptions {
                segment_len: 64,
                ..ScrutinyOptions::default()
            },
        )
        .unwrap();
        let bounded = scrutinize_differential(
            &app,
            &ScrutinyOptions {
                segment_len: 64,
                tape_checkpoints: Some(TapeCheckpointConfig::auto()),
                ..ScrutinyOptions::default()
            },
        )
        .unwrap();
        assert_eq!(
            base.disagreements.len(),
            bounded.disagreements.len(),
            "replay must not change the differential verdicts"
        );
        for (va, vb) in base.ad.vars.iter().zip(&bounded.ad.vars) {
            assert_eq!(va.value_map, vb.value_map);
            assert_eq!(va.structural_map, vb.structural_map);
        }
        for (va, vb) in base.datadep.vars.iter().zip(&bounded.datadep.vars) {
            assert_eq!(va.value_map, vb.value_map);
        }
    }

    #[test]
    fn tape_overflow_is_an_error_not_an_abort() {
        let app = Heat1d::new(16, 8, 4);
        for analyzer in [Analyzer::Ad, Analyzer::DataDep, Analyzer::Both] {
            let err = scrutinize_with(
                &app,
                &ScrutinyOptions {
                    node_limit: 100,
                    analyzer,
                    ..ScrutinyOptions::default()
                },
            )
            .unwrap_err();
            assert_eq!(err, AdError::TapeOverflow { limit: 100 });
        }
    }

    #[test]
    fn datadep_report_equals_ad_structural_map() {
        let app = Heat1d::new(16, 8, 4);
        let ad = scrutinize(&app).unwrap();
        let dd = scrutinize_with(
            &app,
            &ScrutinyOptions {
                analyzer: Analyzer::DataDep,
                ..ScrutinyOptions::default()
            },
        )
        .unwrap();
        assert_eq!(dd.analyzer, Analyzer::DataDep);
        for (va, vd) in ad.vars.iter().zip(&dd.vars) {
            // The datadep criterion is exactly the structural map the AD
            // report computes as its second opinion.
            assert_eq!(vd.value_map, va.structural_map, "{}", va.spec.name);
            assert_eq!(vd.structural_map, vd.value_map);
            assert!(vd.cancellation_only().is_empty());
            // Magnitudes are ∞ on live elements, 0 on dead ones.
            for i in 0..vd.total() {
                let expect = if vd.value_map.get(i) {
                    f64::INFINITY
                } else {
                    0.0
                };
                assert_eq!(vd.grad_mag[i], expect);
            }
        }
    }

    #[test]
    fn differential_report_cross_checks_heat1d() {
        let app = Heat1d::new(16, 8, 4);
        let diff = scrutinize_differential(&app, &ScrutinyOptions::default()).unwrap();
        assert!(diff.is_safe());
        assert_eq!(diff.ad.analyzer, Analyzer::Ad);
        assert_eq!(diff.datadep.analyzer, Analyzer::DataDep);
        // Heat1d's dataflow has no cancellation: the analyzers agree
        // exactly, so there is nothing to disagree about.
        assert!(diff.disagreements.is_empty());
        assert_eq!(diff.over_approximated_elems(), 0);
        // Both reports describe the same recording.
        assert_eq!(diff.ad.tape_stats.nodes, diff.datadep.tape_stats.nodes);
        assert_eq!(diff.ad.ckpt_iter, diff.datadep.ckpt_iter);
        assert_eq!(diff.ad.output_value, diff.datadep.output_value);
    }

    #[test]
    fn analyzer_both_returns_the_ad_report() {
        let app = Heat1d::new(16, 8, 4);
        let base = scrutinize(&app).unwrap();
        let both = scrutinize_with(
            &app,
            &ScrutinyOptions {
                analyzer: Analyzer::Both,
                ..ScrutinyOptions::default()
            },
        )
        .unwrap();
        assert_eq!(both.analyzer, Analyzer::Ad);
        for (va, vb) in base.vars.iter().zip(&both.vars) {
            assert_eq!(va.value_map, vb.value_map);
            assert_eq!(va.structural_map, vb.structural_map);
        }
    }
}
