//! The scrutinizer: one AD run + reverse sweeps ⇒ per-element criticality
//! for every checkpoint variable.
//!
//! The AD pass is the method's bottleneck, so this layer drives the
//! segmented tape's **parallel** sweeps: the value-gradient sweep and the
//! structural-reachability sweep run concurrently on two threads, and each
//! sweep internally merges cross-segment adjoint frontiers on worker
//! threads (see `scrutiny_ad::sweep`). Results are bit-identical to the
//! serial seed sweep by construction. Recording failures (tape overflow)
//! and bad sweep seeds surface as typed [`AdError`]s instead of aborting a
//! long NPB record.

use crate::app::ScrutinyApp;
use crate::site::LeafSite;
use crate::spec::{AppSpec, VarSpec};
use scrutiny_ad::tape::TapeStats;
use scrutiny_ad::{AdError, SweepConfig, SweepStats, TapeConfig, TapeSession};
use scrutiny_ckpt::{Bitmap, DType, Regions};
use std::collections::HashMap;
use std::time::Instant;

/// Criticality classification of one checkpoint variable.
#[derive(Debug)]
pub struct VarCriticality {
    /// The variable's spec (name, dtype, shape).
    pub spec: VarSpec,
    /// Value criticality: bit set ⇔ `∂output/∂element ≠ 0` (the paper's
    /// criterion). Integer variables are control state: always critical.
    pub value_map: Bitmap,
    /// Structural criticality: bit set ⇔ a data-flow path reaches the
    /// output (superset of `value_map`).
    pub structural_map: Bitmap,
    /// Per-element gradient magnitude (max over components for complex;
    /// `+∞` for integer control state). Drives precision tiering.
    pub grad_mag: Vec<f64>,
}

impl VarCriticality {
    /// Total elements.
    pub fn total(&self) -> usize {
        self.value_map.len()
    }

    /// Uncritical element count under the value criterion (Table II).
    pub fn uncritical(&self) -> usize {
        self.value_map.count_zeros()
    }

    /// Critical element count under the value criterion.
    pub fn critical(&self) -> usize {
        self.value_map.count_ones()
    }

    /// Uncritical rate (Table II's last column).
    pub fn uncritical_rate(&self) -> f64 {
        self.value_map.uncritical_rate()
    }

    /// Critical regions (the auxiliary-file form) under the value
    /// criterion.
    pub fn regions(&self) -> Regions {
        Regions::from_bitmap(&self.value_map)
    }

    /// Elements where the two analyses disagree (structurally reachable
    /// but value-gradient exactly zero).
    pub fn cancellation_only(&self) -> Vec<usize> {
        self.structural_map.diff_indices(&self.value_map)
    }
}

/// Everything the analysis learned about one application.
#[derive(Debug)]
pub struct AnalysisReport {
    /// The application's checkpoint spec.
    pub app: AppSpec,
    /// Iteration at whose boundary the analysis checkpoint was placed.
    pub ckpt_iter: usize,
    /// Primal output value of the AD run.
    pub output_value: f64,
    /// Size and segmentation of the recorded tape (`bytes` is real
    /// allocated capacity; `sweep_bytes` the transient sweep memory).
    pub tape_stats: TapeStats,
    /// What the value-gradient sweep did: segments visited, threads used,
    /// adjoint contributions routed through cross-segment frontiers.
    pub sweep: SweepStats,
    /// Same, for the structural-reachability sweep.
    pub reach_sweep: SweepStats,
    /// Wall-clock seconds for record + sweeps.
    pub analysis_seconds: f64,
    /// Per-variable criticality, in spec order.
    pub vars: Vec<VarCriticality>,
    /// Variable index by name, so [`AnalysisReport::var`] is O(1).
    by_name: HashMap<String, usize>,
}

impl AnalysisReport {
    /// Look up one variable's criticality by name.
    pub fn var(&self, name: &str) -> Option<&VarCriticality> {
        self.by_name.get(name).map(|&i| &self.vars[i])
    }

    /// Aggregate uncritical elements across all variables.
    pub fn total_uncritical(&self) -> usize {
        self.vars.iter().map(VarCriticality::uncritical).sum()
    }

    /// Aggregate elements across all variables.
    pub fn total_elems(&self) -> usize {
        self.vars.iter().map(VarCriticality::total).sum()
    }
}

/// Tuning knobs for [`scrutinize_with`].
#[derive(Clone, Copy, Debug)]
pub struct ScrutinyOptions {
    /// Tape-node capacity hint; `None` uses the app's own
    /// [`ScrutinyApp::tape_capacity_hint`].
    pub capacity: Option<usize>,
    /// Tape segment length (power of two). Smaller segments expose more
    /// sweep parallelism; the default suits the NPB kernels.
    pub segment_len: usize,
    /// Threads per reverse sweep (`0` = one per available core, `1` =
    /// serial). The two sweeps additionally run concurrently with each
    /// other.
    pub threads: usize,
    /// Recording budget in tape nodes; exceeding it yields
    /// [`AdError::TapeOverflow`].
    pub node_limit: u64,
}

impl Default for ScrutinyOptions {
    fn default() -> Self {
        let tape = TapeConfig::default();
        ScrutinyOptions {
            capacity: None,
            segment_len: tape.segment_len,
            threads: 0,
            node_limit: tape.node_limit,
        }
    }
}

/// Scrutinize every element of every checkpoint variable of `app`.
///
/// Runs the application once under AD with leaves injected at the
/// checkpoint boundary, then performs the reverse value sweep and the
/// structural sweep (concurrently, each possibly parallel internally).
/// See the crate docs for the method.
pub fn scrutinize(app: &dyn ScrutinyApp) -> Result<AnalysisReport, AdError> {
    scrutinize_with(app, &ScrutinyOptions::default())
}

/// [`scrutinize`] with an explicit tape capacity (nodes).
pub fn scrutinize_with_capacity(
    app: &dyn ScrutinyApp,
    capacity: usize,
) -> Result<AnalysisReport, AdError> {
    scrutinize_with(
        app,
        &ScrutinyOptions {
            capacity: Some(capacity),
            ..ScrutinyOptions::default()
        },
    )
}

/// [`scrutinize`] with full control over segmentation and sweep threads.
pub fn scrutinize_with(
    app: &dyn ScrutinyApp,
    opts: &ScrutinyOptions,
) -> Result<AnalysisReport, AdError> {
    let spec = app.spec();
    let t0 = Instant::now();

    let session = TapeSession::with_config(TapeConfig {
        capacity: opts.capacity.unwrap_or_else(|| app.tape_capacity_hint()),
        segment_len: opts.segment_len,
        node_limit: opts.node_limit,
    });
    let mut site = LeafSite::new();
    let outcome = app.run_ad(&mut site);
    let tape = session.finish();
    let ckpt_iter = site
        .iter
        .expect("the application never reached its checkpoint boundary");
    assert_eq!(
        site.ranges.len(),
        spec.vars.len(),
        "checkpoint site saw {} variables but the spec declares {}",
        site.ranges.len(),
        spec.vars.len()
    );

    // The two sweeps are independent; run them concurrently. Each may
    // additionally parallelize its own frontier merging.
    let cfg = SweepConfig {
        threads: opts.threads,
    };
    let (value_res, reach_res) = std::thread::scope(|scope| {
        let reach = scope.spawn(|| tape.reachable_sweep(outcome.output, cfg));
        let value = tape.gradient_sweep(outcome.output, cfg);
        (value, reach.join().expect("structural sweep panicked"))
    });
    let (grads, sweep) = value_res?;
    let (reach, reach_sweep) = reach_res?;

    let mut vars = Vec::with_capacity(spec.vars.len());
    for (vspec, range) in spec.vars.iter().zip(&site.ranges) {
        assert_eq!(
            vspec.elems(),
            range.elems,
            "variable {:?}: spec says {} elements, site saw {}",
            vspec.name,
            vspec.elems(),
            range.elems
        );
        let n = range.elems;
        let (value_map, structural_map, grad_mag) = match vspec.dtype {
            DType::I64 => {
                // Control state: the paper classifies loop indices and sort
                // keys as critical by definition (they steer execution).
                (Bitmap::full(n), Bitmap::full(n), vec![f64::INFINITY; n])
            }
            DType::F64 => {
                let start = range.start as usize;
                let mut vm = Bitmap::new(n);
                let mut sm = Bitmap::new(n);
                let mut gm = vec![0.0; n];
                for i in 0..n {
                    let g = grads.of_node((start + i) as u64);
                    gm[i] = g.abs();
                    if g != 0.0 {
                        vm.set(i, true);
                    }
                    if reach[start + i] {
                        sm.set(i, true);
                    }
                }
                (vm, sm, gm)
            }
            DType::C128 => {
                let start = range.start as usize;
                let mut vm = Bitmap::new(n);
                let mut sm = Bitmap::new(n);
                let mut gm = vec![0.0; n];
                for i in 0..n {
                    let gre = grads.of_node((start + 2 * i) as u64);
                    let gim = grads.of_node((start + 2 * i + 1) as u64);
                    gm[i] = gre.abs().max(gim.abs());
                    if gre != 0.0 || gim != 0.0 {
                        vm.set(i, true);
                    }
                    if reach[start + 2 * i] || reach[start + 2 * i + 1] {
                        sm.set(i, true);
                    }
                }
                (vm, sm, gm)
            }
        };
        vars.push(VarCriticality {
            spec: vspec.clone(),
            value_map,
            structural_map,
            grad_mag,
        });
    }

    let by_name = vars
        .iter()
        .enumerate()
        .map(|(i, v)| (v.spec.name.clone(), i))
        .collect();
    Ok(AnalysisReport {
        app: spec,
        ckpt_iter,
        output_value: outcome.output.value(),
        tape_stats: tape.stats(),
        sweep,
        reach_sweep,
        analysis_seconds: t0.elapsed().as_secs_f64(),
        vars,
        by_name,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tiny::Heat1d;

    #[test]
    fn heat1d_criticality_matches_construction() {
        let app = Heat1d::new(16, 8, 4);
        let report = scrutinize(&app).unwrap();
        // temp: interior + both boundary cells read; the 2 tail pad cells
        // are never read.
        let temp = report.var("temp").unwrap();
        assert_eq!(temp.total(), 16 + 2 + 2);
        assert_eq!(temp.uncritical(), 2);
        assert!(!temp.value_map.get(18));
        assert!(!temp.value_map.get(19));
        // workspace: overwritten each step before any read => uncritical.
        let ws = report.var("workspace").unwrap();
        assert_eq!(ws.uncritical(), ws.total());
        // step index is control state.
        let it = report.var("it").unwrap();
        assert_eq!(it.uncritical(), 0);
        // Unknown names are None, not a panic.
        assert!(report.var("no_such_var").is_none());
    }

    #[test]
    fn structural_map_is_superset() {
        let app = Heat1d::new(12, 6, 3);
        let report = scrutinize(&app).unwrap();
        for v in &report.vars {
            for i in 0..v.total() {
                if v.value_map.get(i) {
                    assert!(
                        v.structural_map.get(i),
                        "{}[{}] value-critical but not structural",
                        v.spec.name,
                        i
                    );
                }
            }
        }
    }

    #[test]
    fn report_aggregates() {
        let app = Heat1d::new(8, 4, 2);
        let report = scrutinize(&app).unwrap();
        assert_eq!(report.ckpt_iter, 2);
        assert_eq!(
            report.total_elems(),
            report.vars.iter().map(|v| v.total()).sum::<usize>()
        );
        assert!(report.tape_stats.nodes > 0);
        assert!(report.tape_stats.segments > 0);
        assert!(report.tape_stats.bytes >= report.tape_stats.nodes * scrutiny_ad::NODE_BYTES);
        assert!(report.sweep.segments > 0);
        assert!(report.output_value.is_finite());
    }

    #[test]
    fn criticality_independent_of_checkpoint_position() {
        // The access pattern is iteration-invariant, so the maps must not
        // depend on where the checkpoint lands (mirrors the NPB reality).
        let a = scrutinize(&Heat1d::new(16, 8, 2)).unwrap();
        let b = scrutinize(&Heat1d::new(16, 8, 6)).unwrap();
        for (va, vb) in a.vars.iter().zip(&b.vars) {
            assert_eq!(va.value_map, vb.value_map, "map for {}", va.spec.name);
        }
    }

    #[test]
    fn forced_segmentation_and_parallel_sweeps_match_defaults() {
        // Drive the analysis through many tiny segments with parallel
        // sweeps; criticality must be identical to the default path.
        let app = Heat1d::new(16, 8, 4);
        let base = scrutinize(&app).unwrap();
        let seg = scrutinize_with(
            &app,
            &ScrutinyOptions {
                segment_len: 64,
                threads: 4,
                ..ScrutinyOptions::default()
            },
        )
        .unwrap();
        assert!(seg.tape_stats.segments > 1);
        assert!(seg.sweep.parallel);
        assert_eq!(seg.sweep.threads, 4);
        for (va, vb) in base.vars.iter().zip(&seg.vars) {
            assert_eq!(va.value_map, vb.value_map);
            assert_eq!(va.structural_map, vb.structural_map);
            for (ga, gb) in va.grad_mag.iter().zip(&vb.grad_mag) {
                assert_eq!(
                    ga.to_bits(),
                    gb.to_bits(),
                    "gradients must be bit-identical"
                );
            }
        }
    }

    #[test]
    fn tape_overflow_is_an_error_not_an_abort() {
        let app = Heat1d::new(16, 8, 4);
        let err = scrutinize_with(
            &app,
            &ScrutinyOptions {
                node_limit: 100,
                ..ScrutinyOptions::default()
            },
        )
        .unwrap_err();
        assert_eq!(err, AdError::TapeOverflow { limit: 100 });
    }
}
