//! The scrutinizer: one AD run + one reverse sweep ⇒ per-element
//! criticality for every checkpoint variable.

use crate::app::ScrutinyApp;
use crate::site::LeafSite;
use crate::spec::{AppSpec, VarSpec};
use scrutiny_ad::tape::TapeStats;
use scrutiny_ad::TapeSession;
use scrutiny_ckpt::{Bitmap, DType, Regions};
use std::time::Instant;

/// Criticality classification of one checkpoint variable.
pub struct VarCriticality {
    /// The variable's spec (name, dtype, shape).
    pub spec: VarSpec,
    /// Value criticality: bit set ⇔ `∂output/∂element ≠ 0` (the paper's
    /// criterion). Integer variables are control state: always critical.
    pub value_map: Bitmap,
    /// Structural criticality: bit set ⇔ a data-flow path reaches the
    /// output (superset of `value_map`).
    pub structural_map: Bitmap,
    /// Per-element gradient magnitude (max over components for complex;
    /// `+∞` for integer control state). Drives precision tiering.
    pub grad_mag: Vec<f64>,
}

impl VarCriticality {
    /// Total elements.
    pub fn total(&self) -> usize {
        self.value_map.len()
    }

    /// Uncritical element count under the value criterion (Table II).
    pub fn uncritical(&self) -> usize {
        self.value_map.count_zeros()
    }

    /// Critical element count under the value criterion.
    pub fn critical(&self) -> usize {
        self.value_map.count_ones()
    }

    /// Uncritical rate (Table II's last column).
    pub fn uncritical_rate(&self) -> f64 {
        self.value_map.uncritical_rate()
    }

    /// Critical regions (the auxiliary-file form) under the value
    /// criterion.
    pub fn regions(&self) -> Regions {
        Regions::from_bitmap(&self.value_map)
    }

    /// Elements where the two analyses disagree (structurally reachable
    /// but value-gradient exactly zero).
    pub fn cancellation_only(&self) -> Vec<usize> {
        self.structural_map.diff_indices(&self.value_map)
    }
}

/// Everything the analysis learned about one application.
pub struct AnalysisReport {
    /// The application's checkpoint spec.
    pub app: AppSpec,
    /// Iteration at whose boundary the analysis checkpoint was placed.
    pub ckpt_iter: usize,
    /// Primal output value of the AD run.
    pub output_value: f64,
    /// Size of the recorded tape.
    pub tape_stats: TapeStats,
    /// Wall-clock seconds for record + sweeps.
    pub analysis_seconds: f64,
    /// Per-variable criticality, in spec order.
    pub vars: Vec<VarCriticality>,
}

impl AnalysisReport {
    /// Look up one variable's criticality by name.
    pub fn var(&self, name: &str) -> Option<&VarCriticality> {
        self.vars.iter().find(|v| v.spec.name == name)
    }

    /// Aggregate uncritical elements across all variables.
    pub fn total_uncritical(&self) -> usize {
        self.vars.iter().map(VarCriticality::uncritical).sum()
    }

    /// Aggregate elements across all variables.
    pub fn total_elems(&self) -> usize {
        self.vars.iter().map(VarCriticality::total).sum()
    }
}

/// Scrutinize every element of every checkpoint variable of `app`.
///
/// Runs the application once under AD with leaves injected at the
/// checkpoint boundary, then performs the reverse value sweep and the
/// structural sweep. See the crate docs for the method.
pub fn scrutinize(app: &dyn ScrutinyApp) -> AnalysisReport {
    scrutinize_with_capacity(app, app.tape_capacity_hint())
}

/// [`scrutinize`] with an explicit tape capacity (nodes).
pub fn scrutinize_with_capacity(app: &dyn ScrutinyApp, capacity: usize) -> AnalysisReport {
    let spec = app.spec();
    let t0 = Instant::now();

    let session = TapeSession::with_capacity(capacity);
    let mut site = LeafSite::new();
    let outcome = app.run_ad(&mut site);
    let tape = session.finish();
    let ckpt_iter = site
        .iter
        .expect("the application never reached its checkpoint boundary");
    assert_eq!(
        site.ranges.len(),
        spec.vars.len(),
        "checkpoint site saw {} variables but the spec declares {}",
        site.ranges.len(),
        spec.vars.len()
    );

    let grads = tape.gradient(outcome.output);
    let reach = tape.reachable(outcome.output);

    let mut vars = Vec::with_capacity(spec.vars.len());
    for (vspec, range) in spec.vars.iter().zip(&site.ranges) {
        assert_eq!(
            vspec.elems(),
            range.elems,
            "variable {:?}: spec says {} elements, site saw {}",
            vspec.name,
            vspec.elems(),
            range.elems
        );
        let n = range.elems;
        let (value_map, structural_map, grad_mag) = match vspec.dtype {
            DType::I64 => {
                // Control state: the paper classifies loop indices and sort
                // keys as critical by definition (they steer execution).
                (Bitmap::full(n), Bitmap::full(n), vec![f64::INFINITY; n])
            }
            DType::F64 => {
                let start = range.start as usize;
                let mut vm = Bitmap::new(n);
                let mut sm = Bitmap::new(n);
                let mut gm = vec![0.0; n];
                for i in 0..n {
                    let g = grads.of_node((start + i) as u32);
                    gm[i] = g.abs();
                    if g != 0.0 {
                        vm.set(i, true);
                    }
                    if reach[start + i] {
                        sm.set(i, true);
                    }
                }
                (vm, sm, gm)
            }
            DType::C128 => {
                let start = range.start as usize;
                let mut vm = Bitmap::new(n);
                let mut sm = Bitmap::new(n);
                let mut gm = vec![0.0; n];
                for i in 0..n {
                    let gre = grads.of_node((start + 2 * i) as u32);
                    let gim = grads.of_node((start + 2 * i + 1) as u32);
                    gm[i] = gre.abs().max(gim.abs());
                    if gre != 0.0 || gim != 0.0 {
                        vm.set(i, true);
                    }
                    if reach[start + 2 * i] || reach[start + 2 * i + 1] {
                        sm.set(i, true);
                    }
                }
                (vm, sm, gm)
            }
        };
        vars.push(VarCriticality {
            spec: vspec.clone(),
            value_map,
            structural_map,
            grad_mag,
        });
    }

    AnalysisReport {
        app: spec,
        ckpt_iter,
        output_value: outcome.output.value(),
        tape_stats: tape.stats(),
        analysis_seconds: t0.elapsed().as_secs_f64(),
        vars,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tiny::Heat1d;

    #[test]
    fn heat1d_criticality_matches_construction() {
        let app = Heat1d::new(16, 8, 4);
        let report = scrutinize(&app);
        // temp: interior + both boundary cells read; the 2 tail pad cells
        // are never read.
        let temp = report.var("temp").unwrap();
        assert_eq!(temp.total(), 16 + 2 + 2);
        assert_eq!(temp.uncritical(), 2);
        assert!(!temp.value_map.get(18));
        assert!(!temp.value_map.get(19));
        // workspace: overwritten each step before any read => uncritical.
        let ws = report.var("workspace").unwrap();
        assert_eq!(ws.uncritical(), ws.total());
        // step index is control state.
        let it = report.var("it").unwrap();
        assert_eq!(it.uncritical(), 0);
    }

    #[test]
    fn structural_map_is_superset() {
        let app = Heat1d::new(12, 6, 3);
        let report = scrutinize(&app);
        for v in &report.vars {
            for i in 0..v.total() {
                if v.value_map.get(i) {
                    assert!(
                        v.structural_map.get(i),
                        "{}[{}] value-critical but not structural",
                        v.spec.name,
                        i
                    );
                }
            }
        }
    }

    #[test]
    fn report_aggregates() {
        let app = Heat1d::new(8, 4, 2);
        let report = scrutinize(&app);
        assert_eq!(report.ckpt_iter, 2);
        assert_eq!(
            report.total_elems(),
            report.vars.iter().map(|v| v.total()).sum::<usize>()
        );
        assert!(report.tape_stats.nodes > 0);
        assert!(report.output_value.is_finite());
    }

    #[test]
    fn criticality_independent_of_checkpoint_position() {
        // The access pattern is iteration-invariant, so the maps must not
        // depend on where the checkpoint lands (mirrors the NPB reality).
        let a = scrutinize(&Heat1d::new(16, 8, 2));
        let b = scrutinize(&Heat1d::new(16, 8, 6));
        for (va, vb) in a.vars.iter().zip(&b.vars) {
            assert_eq!(va.value_map, vb.value_map, "map for {}", va.spec.name);
        }
    }
}
