//! The application contract for scrutiny analysis.

use crate::site::CkptSite;
use crate::spec::AppSpec;
use scrutiny_ad::Adj;

/// Result of one application run.
#[derive(Clone, Copy, Debug)]
pub struct RunOutcome<R> {
    /// The scalar the application's own verification inspects — the
    /// "output" whose derivative defines criticality (paper §III.A).
    pub output: R,
}

/// An application whose checkpoint variables can be scrutinized.
///
/// The two run methods must execute the *same* computation (implementations
/// typically delegate to one generic function). Both call the site exactly
/// once, at the iteration returned by [`ScrutinyApp::checkpoint_iter`],
/// presenting the checkpoint variables in [`AppSpec`] order.
pub trait ScrutinyApp {
    /// Name, class and checkpoint variables (the paper's Table I row).
    fn spec(&self) -> AppSpec;

    /// Main-loop iteration at whose boundary the checkpoint is taken.
    fn checkpoint_iter(&self) -> usize;

    /// Native run (golden, capture and restart paths).
    fn run_f64(&self, site: &mut dyn CkptSite<f64>) -> RunOutcome<f64>;

    /// Recording run for the AD analysis. Must follow the identical code
    /// path as [`ScrutinyApp::run_f64`] (same control flow for the same
    /// state), instantiated with the tape scalar.
    fn run_ad(&self, site: &mut dyn CkptSite<Adj>) -> RunOutcome<Adj>;

    /// Tape-node capacity hint for the AD run (pre-reserves the tape).
    fn tape_capacity_hint(&self) -> usize {
        1 << 20
    }

    /// Relative tolerance when comparing a restarted output against the
    /// golden output (the application's own "verification").
    fn tolerance(&self) -> f64 {
        1e-9
    }
}
