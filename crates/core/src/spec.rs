//! Checkpoint variable specifications (the paper's Table I).

use scrutiny_ckpt::DType;

/// One variable the application declares necessary for checkpointing.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VarSpec {
    /// Variable name as it appears in the application source.
    pub name: String,
    /// Element type.
    pub dtype: DType,
    /// Logical (possibly multi-dimensional) shape; the product is the
    /// element count. A scalar has shape `[1]`.
    pub shape: Vec<usize>,
}

impl VarSpec {
    /// A double array with the given shape.
    pub fn f64(name: impl Into<String>, shape: &[usize]) -> Self {
        VarSpec {
            name: name.into(),
            dtype: DType::F64,
            shape: shape.to_vec(),
        }
    }

    /// A `dcomplex` array with the given shape.
    pub fn c128(name: impl Into<String>, shape: &[usize]) -> Self {
        VarSpec {
            name: name.into(),
            dtype: DType::C128,
            shape: shape.to_vec(),
        }
    }

    /// An integer array with the given shape.
    pub fn i64(name: impl Into<String>, shape: &[usize]) -> Self {
        VarSpec {
            name: name.into(),
            dtype: DType::I64,
            shape: shape.to_vec(),
        }
    }

    /// An integer scalar (loop index and similar control state).
    pub fn int_scalar(name: impl Into<String>) -> Self {
        Self::i64(name, &[1])
    }

    /// Total element count.
    pub fn elems(&self) -> usize {
        self.shape.iter().product()
    }

    /// Full (unpruned) storage in bytes.
    pub fn full_bytes(&self) -> usize {
        self.elems() * self.dtype.elem_bytes()
    }

    /// C-style declaration string, e.g. `double u[12][13][13][5]` —
    /// used by the Table I generator.
    pub fn declaration(&self) -> String {
        let ty = match self.dtype {
            DType::F64 => "double",
            DType::C128 => "dcomplex",
            DType::I64 => "int",
        };
        if self.shape == [1] {
            format!("{ty} {}", self.name)
        } else {
            let dims: String = self.shape.iter().map(|d| format!("[{d}]")).collect();
            format!("{ty} {}{dims}", self.name)
        }
    }
}

/// An application's checkpoint specification.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AppSpec {
    /// Benchmark/application name (e.g. `BT`).
    pub name: String,
    /// Problem class (e.g. `S`).
    pub class: String,
    /// Variables necessary for checkpointing, in the order the app's
    /// checkpoint site presents them.
    pub vars: Vec<VarSpec>,
}

impl AppSpec {
    /// Total full-checkpoint bytes across all variables.
    pub fn full_bytes(&self) -> usize {
        self.vars.iter().map(VarSpec::full_bytes).sum()
    }

    /// Find a variable spec by name.
    pub fn var(&self, name: &str) -> Option<&VarSpec> {
        self.vars.iter().find(|v| v.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elems_and_bytes() {
        let v = VarSpec::f64("u", &[12, 13, 13, 5]);
        assert_eq!(v.elems(), 10140);
        assert_eq!(v.full_bytes(), 81120);
        let c = VarSpec::c128("y", &[64, 64, 65]);
        assert_eq!(c.elems(), 266_240);
        assert_eq!(c.full_bytes(), 4_259_840);
    }

    #[test]
    fn declarations_match_paper_style() {
        assert_eq!(
            VarSpec::f64("u", &[12, 13, 13, 5]).declaration(),
            "double u[12][13][13][5]"
        );
        assert_eq!(VarSpec::int_scalar("step").declaration(), "int step");
        assert_eq!(
            VarSpec::c128("sums", &[6]).declaration(),
            "dcomplex sums[6]"
        );
    }

    #[test]
    fn app_spec_totals() {
        let app = AppSpec {
            name: "BT".into(),
            class: "S".into(),
            vars: vec![
                VarSpec::f64("u", &[12, 13, 13, 5]),
                VarSpec::int_scalar("step"),
            ],
        };
        assert_eq!(app.full_bytes(), 81120 + 8);
        assert!(app.var("u").is_some());
        assert!(app.var("nope").is_none());
    }
}
