//! Checkpoint sites: what happens at the checkpoint boundary.
//!
//! An application calls its site exactly once per run, at the configured
//! main-loop boundary, handing over mutable views of every checkpoint
//! variable (in `AppSpec` order). Different sites implement the three
//! phases of the method:
//!
//! * [`CaptureSite`] (`R = f64`) — copy the state out (to be written to a
//!   checkpoint).
//! * [`LeafSite`] (`R = Adj`) — replace every float element with a fresh
//!   tape leaf, recording the leaf-id layout for the reverse sweep.
//! * [`RestoreSite`] (`R = f64`) — overwrite the state with restored
//!   (possibly hole-filled, possibly corrupted) buffers: the restart.

use scrutiny_ad::{Adj, Cplx, Real};
use scrutiny_ckpt::{DType, VarData};

/// A mutable view of one checkpoint variable at the boundary.
pub enum VarRefMut<'a, R: Real> {
    /// Double array (flattened).
    F64(&'a mut [R]),
    /// Complex array (flattened).
    C128(&'a mut [Cplx<R>]),
    /// Integer state (loop indices, sort keys…). Not differentiable;
    /// classified by control-criticality rules instead of AD.
    I64(&'a mut [i64]),
}

impl<R: Real> VarRefMut<'_, R> {
    /// Element count of the view (complex counts as one element).
    pub fn len(&self) -> usize {
        match self {
            VarRefMut::F64(s) => s.len(),
            VarRefMut::C128(s) => s.len(),
            VarRefMut::I64(s) => s.len(),
        }
    }

    /// True for an empty view.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Element type of the view.
    pub fn dtype(&self) -> DType {
        match self {
            VarRefMut::F64(_) => DType::F64,
            VarRefMut::C128(_) => DType::C128,
            VarRefMut::I64(_) => DType::I64,
        }
    }
}

/// Observer/mutator invoked once at the checkpoint boundary.
pub trait CkptSite<R: Real> {
    /// `iter` is the main-loop index at the boundary; `vars` are views of
    /// the checkpoint variables in `AppSpec` order.
    fn at_boundary(&mut self, iter: usize, vars: &mut [VarRefMut<'_, R>]);
}

/// A site that does nothing (uninterrupted golden runs).
pub struct NoopSite;

impl<R: Real> CkptSite<R> for NoopSite {
    fn at_boundary(&mut self, _iter: usize, _vars: &mut [VarRefMut<'_, R>]) {}
}

impl<R: Real, F: FnMut(usize, &mut [VarRefMut<'_, R>])> CkptSite<R> for F {
    fn at_boundary(&mut self, iter: usize, vars: &mut [VarRefMut<'_, R>]) {
        self(iter, vars)
    }
}

/// Captures the values of all checkpoint variables.
#[derive(Default)]
pub struct CaptureSite {
    /// Captured payloads in spec order (filled after the run).
    pub vars: Vec<VarData>,
    /// The boundary iteration observed.
    pub iter: Option<usize>,
}

impl CaptureSite {
    /// Fresh capture site.
    pub fn new() -> Self {
        Self::default()
    }
}

impl CkptSite<f64> for CaptureSite {
    fn at_boundary(&mut self, iter: usize, vars: &mut [VarRefMut<'_, f64>]) {
        assert!(self.iter.is_none(), "checkpoint boundary visited twice");
        self.iter = Some(iter);
        for v in vars.iter() {
            self.vars.push(match v {
                VarRefMut::F64(s) => VarData::F64(s.to_vec()),
                VarRefMut::C128(s) => VarData::C128(s.iter().map(|c| (c.re, c.im)).collect()),
                VarRefMut::I64(s) => VarData::I64(s.to_vec()),
            });
        }
    }
}

/// Leaf-id layout for one variable after an AD run.
#[derive(Clone, Copy, Debug)]
pub struct LeafRange {
    /// First tape node id of this variable's leaves.
    pub start: u64,
    /// Elements in the variable.
    pub elems: usize,
    /// Tape leaves per element (1 for f64, 2 for complex, 0 for ints).
    pub per_elem: usize,
    /// Element type.
    pub dtype: DType,
}

/// Replaces every float element with a fresh tape leaf at the boundary.
#[derive(Default)]
pub struct LeafSite {
    /// Per-variable leaf layout in spec order (filled at the boundary).
    pub ranges: Vec<LeafRange>,
    /// The boundary iteration observed.
    pub iter: Option<usize>,
}

impl LeafSite {
    /// Fresh leaf site.
    pub fn new() -> Self {
        Self::default()
    }
}

impl CkptSite<Adj> for LeafSite {
    fn at_boundary(&mut self, iter: usize, vars: &mut [VarRefMut<'_, Adj>]) {
        assert!(self.iter.is_none(), "checkpoint boundary visited twice");
        self.iter = Some(iter);
        for v in vars.iter_mut() {
            let range = match v {
                VarRefMut::F64(s) => {
                    let mut start = None;
                    for x in s.iter_mut() {
                        let leaf = Adj::leaf(x.value());
                        // An overflowed tape drops leaves; the poisoning
                        // surfaces as a typed AdError at sweep time, so the
                        // placeholder start is never consumed.
                        start.get_or_insert(leaf.index().unwrap_or(0));
                        *x = leaf;
                    }
                    LeafRange {
                        start: start.unwrap_or(0),
                        elems: s.len(),
                        per_elem: 1,
                        dtype: DType::F64,
                    }
                }
                VarRefMut::C128(s) => {
                    let mut start = None;
                    for c in s.iter_mut() {
                        let re = Adj::leaf(c.re.value());
                        let im = Adj::leaf(c.im.value());
                        start.get_or_insert(re.index().unwrap_or(0));
                        *c = Cplx::new(re, im);
                    }
                    LeafRange {
                        start: start.unwrap_or(0),
                        elems: s.len(),
                        per_elem: 2,
                        dtype: DType::C128,
                    }
                }
                VarRefMut::I64(s) => LeafRange {
                    start: 0,
                    elems: s.len(),
                    per_elem: 0,
                    dtype: DType::I64,
                },
            };
            self.ranges.push(range);
        }
    }
}

/// Overwrites the state with restored buffers — the restart path.
///
/// The buffers come from [`scrutiny_ckpt::Checkpoint`] materialization
/// (critical elements from disk, holes filled per `FillPolicy`), possibly
/// further corrupted by a fault-injection campaign.
pub struct RestoreSite {
    bufs: Vec<VarData>,
    /// Whether the boundary was reached (sanity check after the run).
    pub applied: bool,
}

impl RestoreSite {
    /// Restore from the given buffers (spec order).
    pub fn new(bufs: Vec<VarData>) -> Self {
        RestoreSite {
            bufs,
            applied: false,
        }
    }
}

impl CkptSite<f64> for RestoreSite {
    fn at_boundary(&mut self, _iter: usize, vars: &mut [VarRefMut<'_, f64>]) {
        assert!(!self.applied, "checkpoint boundary visited twice");
        assert_eq!(
            vars.len(),
            self.bufs.len(),
            "restore buffer count does not match the app's checkpoint spec"
        );
        for (v, buf) in vars.iter_mut().zip(&self.bufs) {
            match (v, buf) {
                (VarRefMut::F64(s), VarData::F64(b)) => {
                    assert_eq!(s.len(), b.len(), "restored f64 length mismatch");
                    s.copy_from_slice(b);
                }
                (VarRefMut::C128(s), VarData::C128(b)) => {
                    assert_eq!(s.len(), b.len(), "restored c128 length mismatch");
                    for (c, &(re, im)) in s.iter_mut().zip(b) {
                        *c = Cplx::new(re, im);
                    }
                }
                (VarRefMut::I64(s), VarData::I64(b)) => {
                    assert_eq!(s.len(), b.len(), "restored i64 length mismatch");
                    s.copy_from_slice(b);
                }
                _ => panic!("restore buffer dtype does not match the variable"),
            }
        }
        self.applied = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scrutiny_ad::TapeSession;

    fn drive<R: Real>(site: &mut dyn CkptSite<R>, seed: f64) -> (Vec<R>, Vec<Cplx<R>>, Vec<i64>) {
        let mut f = vec![R::lit(seed), R::lit(seed + 1.0)];
        let mut c = vec![Cplx::lit(seed, -seed)];
        let mut i = vec![7i64];
        {
            let mut views = [
                VarRefMut::F64(&mut f),
                VarRefMut::C128(&mut c),
                VarRefMut::I64(&mut i),
            ];
            site.at_boundary(3, &mut views);
        }
        (f, c, i)
    }

    #[test]
    fn capture_copies_values() {
        let mut cap = CaptureSite::new();
        drive::<f64>(&mut cap, 2.0);
        assert_eq!(cap.iter, Some(3));
        assert_eq!(cap.vars[0], VarData::F64(vec![2.0, 3.0]));
        assert_eq!(cap.vars[1], VarData::C128(vec![(2.0, -2.0)]));
        assert_eq!(cap.vars[2], VarData::I64(vec![7]));
    }

    #[test]
    fn leaf_site_assigns_contiguous_ids() {
        let session = TapeSession::new();
        let mut leaf = LeafSite::new();
        let (f, c, _) = drive::<Adj>(&mut leaf, 1.0);
        let tape = session.finish();
        assert_eq!(tape.leaf_count(), 2 + 2); // two f64 + one complex
        assert_eq!(leaf.ranges[0].per_elem, 1);
        assert_eq!(leaf.ranges[1].per_elem, 2);
        assert_eq!(leaf.ranges[2].per_elem, 0);
        // Values preserved across leaf substitution.
        assert_eq!(f[0].value(), 1.0);
        assert_eq!(c[0].re.value(), 1.0);
        // Contiguity: f64 leaves then complex leaves.
        assert_eq!(leaf.ranges[0].start + 2, leaf.ranges[1].start);
    }

    #[test]
    fn restore_overwrites_state() {
        let bufs = vec![
            VarData::F64(vec![10.0, 20.0]),
            VarData::C128(vec![(5.0, 6.0)]),
            VarData::I64(vec![42]),
        ];
        let mut site = RestoreSite::new(bufs);
        let (f, c, i) = drive::<f64>(&mut site, 0.0);
        assert!(site.applied);
        assert_eq!(f, vec![10.0, 20.0]);
        assert_eq!((c[0].re, c[0].im), (5.0, 6.0));
        assert_eq!(i, vec![42]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn restore_length_mismatch_panics() {
        let mut site = RestoreSite::new(vec![
            VarData::F64(vec![1.0]),
            VarData::C128(vec![(0.0, 0.0)]),
            VarData::I64(vec![0]),
        ]);
        drive::<f64>(&mut site, 0.0);
    }

    #[test]
    fn closure_site_works() {
        let mut seen = 0usize;
        let mut site = |iter: usize, vars: &mut [VarRefMut<'_, f64>]| {
            seen = iter + vars.len();
        };
        drive::<f64>(&mut site, 0.0);
        assert_eq!(seen, 6);
    }
}
