//! Checkpoint → failure → restart, end to end (the paper's §IV.C).
//!
//! The cycle: run to the checkpoint boundary, write a (pruned) checkpoint,
//! "fail", restore — placing stored elements at their recorded offsets and
//! filling the pruned holes with garbage — and run to completion. The
//! restarted output must match the uninterrupted golden output within the
//! application's own tolerance; that passing is precisely how the paper
//! validates the AD classification.

use crate::analysis::AnalysisReport;
use crate::app::ScrutinyApp;
use crate::plan::{codec_for, plans_for, Policy};
use crate::site::{CaptureSite, NoopSite, RestoreSite};
use scrutiny_ckpt::writer::{serialize, serialize_with};
use scrutiny_ckpt::{
    Checkpoint, CheckpointStore, CkptError, DType, FillPolicy, StorageBreakdown, VarData, VarPlan,
    VarRecord,
};
use scrutiny_engine::{
    EngineError, EngineHandle, Recovered, RecoveryConfig, RecoveryManager, RecoveryReport,
};
use std::path::PathBuf;

/// Configuration of a restart experiment.
#[derive(Clone, Debug)]
pub struct RestartConfig {
    /// Storage policy for the checkpoint under test.
    pub policy: Policy,
    /// Fill for elements the checkpoint did not store.
    pub fill: FillPolicy,
    /// When set, the checkpoint round-trips through files in this
    /// directory (via [`CheckpointStore`]); otherwise through memory.
    pub store_dir: Option<PathBuf>,
}

impl Default for RestartConfig {
    fn default() -> Self {
        RestartConfig {
            policy: Policy::PrunedValue,
            fill: FillPolicy::Garbage(0x5EED),
            store_dir: None,
        }
    }
}

/// Outcome of one checkpoint/restart cycle.
#[derive(Clone, Debug)]
pub struct RestartReport {
    /// Output of the uninterrupted run.
    pub golden: f64,
    /// Output of the restarted run.
    pub restarted: f64,
    /// |restarted − golden|.
    pub abs_err: f64,
    /// Relative error against max(1, |golden|).
    pub rel_err: f64,
    /// Did the restarted run reproduce the golden output within the
    /// application's tolerance? (The benchmark's "verification".)
    pub verified: bool,
    /// Storage of the checkpoint under test.
    pub storage: StorageBreakdown,
    /// Storage of the full (baseline) checkpoint of the same state.
    pub full_storage: StorageBreakdown,
}

/// Capture the checkpoint state of `app` as named records.
pub fn capture_state(app: &dyn ScrutinyApp) -> Vec<VarRecord> {
    let spec = app.spec();
    let mut site = CaptureSite::new();
    app.run_f64(&mut site);
    assert_eq!(
        site.vars.len(),
        spec.vars.len(),
        "capture saw {} variables, spec declares {}",
        site.vars.len(),
        spec.vars.len()
    );
    spec.vars
        .iter()
        .zip(site.vars)
        .map(|(vs, data)| VarRecord::new(vs.name.clone(), data))
        .collect()
}

/// The front half of every verification cycle: golden run, state
/// capture, storage plans, and the full-checkpoint baseline accounting.
struct CyclePrefix {
    golden: f64,
    vars: Vec<VarRecord>,
    plans: Vec<VarPlan>,
    full_storage: StorageBreakdown,
}

fn cycle_prefix(
    app: &dyn ScrutinyApp,
    analysis: &AnalysisReport,
    cfg: &RestartConfig,
) -> Result<CyclePrefix, CkptError> {
    let golden = app.run_f64(&mut NoopSite).output;
    let vars = capture_state(app);
    let plans = plans_for(analysis, cfg.policy);
    let full_plans: Vec<VarPlan> = vars.iter().map(|_| VarPlan::Full).collect();
    let full_storage = serialize(&vars, &full_plans)?.breakdown;
    Ok(CyclePrefix {
        golden,
        vars,
        plans,
        full_storage,
    })
}

/// The back half: restore from a loaded checkpoint (holes filled,
/// optionally corrupted), restart, and compare against the golden output.
/// Both the blocking and the async cycle end here, so the verification
/// semantics cannot diverge between them.
fn cycle_finish(
    app: &dyn ScrutinyApp,
    analysis: &AnalysisReport,
    cfg: &RestartConfig,
    prefix: &CyclePrefix,
    checkpoint: &Checkpoint,
    storage: StorageBreakdown,
    mutate: impl FnOnce(&mut [VarData], &AnalysisReport),
) -> Result<RestartReport, CkptError> {
    // Restore: full-size buffers, holes filled, then optional corruption.
    let mut bufs = materialize_all(checkpoint, analysis, cfg.fill)?;
    mutate(&mut bufs, analysis);

    // Restart ("resume" semantics: deterministic pre-checkpoint prefix,
    // state overwritten at the boundary, remainder recomputed).
    let mut site = RestoreSite::new(bufs);
    let restarted = app.run_f64(&mut site).output;
    assert!(
        site.applied,
        "the run never reached its checkpoint boundary"
    );

    let abs_err = (restarted - prefix.golden).abs();
    let rel_err = abs_err / prefix.golden.abs().max(1.0);
    Ok(RestartReport {
        golden: prefix.golden,
        restarted,
        abs_err,
        rel_err,
        verified: rel_err <= app.tolerance(),
        storage,
        full_storage: prefix.full_storage,
    })
}

/// Run the full cycle; `mutate` may corrupt the restored buffers before
/// the restart (fault injection). Pass a no-op closure for a clean cycle.
pub fn restart_with_mutation(
    app: &dyn ScrutinyApp,
    analysis: &AnalysisReport,
    cfg: &RestartConfig,
    mutate: impl FnOnce(&mut [VarData], &AnalysisReport),
) -> Result<RestartReport, CkptError> {
    let prefix = cycle_prefix(app, analysis, cfg)?;
    // The policy decides the storage codec: `TieredCompressed` stores
    // the lo tier as truncated-mantissa f64 (and, through a store, the
    // data objects in the `SCRUTCZB` at-rest container); every other
    // policy is the strict passthrough.
    let codec = codec_for(cfg.policy);
    let (checkpoint, storage) = match &cfg.store_dir {
        Some(dir) => {
            let mut store = CheckpointStore::open(dir, 2)?.with_codec(codec)?;
            let (version, storage) = store.save(&prefix.vars, &prefix.plans)?;
            (store.load(version)?, storage)
        }
        None => {
            let ser = serialize_with(&prefix.vars, &prefix.plans, codec.lo)?;
            (Checkpoint::from_bytes(&ser.data, &ser.aux)?, ser.breakdown)
        }
    };
    cycle_finish(app, analysis, cfg, &prefix, &checkpoint, storage, mutate)
}

/// A clean (no corruption) checkpoint/restart cycle.
pub fn checkpoint_restart_cycle(
    app: &dyn ScrutinyApp,
    analysis: &AnalysisReport,
    cfg: &RestartConfig,
) -> Result<RestartReport, CkptError> {
    restart_with_mutation(app, analysis, cfg, |_, _| {})
}

/// Capture `app`'s checkpoint state and submit it to the async engine;
/// the compute thread gets its [`scrutiny_engine::Ticket`] back as soon
/// as the snapshot is staged.
pub fn submit_checkpoint(
    app: &dyn ScrutinyApp,
    analysis: &AnalysisReport,
    policy: Policy,
    engine: &EngineHandle,
) -> Result<scrutiny_engine::Ticket, EngineError> {
    let vars = capture_state(app);
    let plans = plans_for(analysis, policy);
    engine.submit(&vars, &plans)
}

/// The §IV.C verification cycle, but with the checkpoint written by the
/// asynchronous engine instead of a blocking save: capture → `submit` →
/// `wait` → restore **from the engine-written checkpoint** (read back
/// through whatever backend the engine publishes into) → restart → verify
/// against the golden output. `cfg.store_dir` is ignored; the engine's
/// backend decides where bytes live.
pub fn checkpoint_restart_cycle_async(
    app: &dyn ScrutinyApp,
    analysis: &AnalysisReport,
    cfg: &RestartConfig,
    engine: &EngineHandle,
) -> Result<RestartReport, EngineError> {
    let prefix = cycle_prefix(app, analysis, cfg).map_err(EngineError::from)?;

    let ticket = engine.submit(&prefix.vars, &prefix.plans)?;
    let version = ticket.version();
    let storage = engine.wait(ticket)?;

    // Consume the engine-written checkpoint through the existing reader.
    let (data, aux) = scrutiny_engine::read_version(engine.backend().as_ref(), version)?;
    let checkpoint = Checkpoint::from_bytes(&data, &aux).map_err(EngineError::from)?;

    cycle_finish(app, analysis, cfg, &prefix, &checkpoint, storage, |_, _| {})
        .map_err(EngineError::from)
}

/// Run the §IV.C verification cycle against an **already-loaded**
/// checkpoint: golden run, restore from `checkpoint` with holes filled,
/// restart, compare. This is the back half every recovery path ends in —
/// the checkpoint may have been read serially, restored by the parallel
/// pipeline, or selected by a [`RecoveryManager`] fallback scan; the
/// verification semantics are identical. `storage` is whatever byte
/// accounting the caller has for the checkpoint under test (recovery
/// callers typically only know raw image sizes — see
/// [`checkpoint_recover_cycle_async`]).
pub fn verify_restart_from(
    app: &dyn ScrutinyApp,
    analysis: &AnalysisReport,
    cfg: &RestartConfig,
    checkpoint: &Checkpoint,
    storage: StorageBreakdown,
) -> Result<RestartReport, CkptError> {
    let prefix = cycle_prefix(app, analysis, cfg)?;
    cycle_finish(app, analysis, cfg, &prefix, checkpoint, storage, |_, _| {})
}

/// Outcome of a recover-then-restart cycle: the §IV.C verification
/// result plus the recovery scan that chose the checkpoint.
#[derive(Debug)]
pub struct RecoverRestartReport {
    /// The restart verification against the golden output.
    pub restart: RestartReport,
    /// Which version recovered, what was rejected on the way, and why.
    pub recovery: RecoveryReport,
}

/// The restore counterpart of [`submit_checkpoint`]: recover the newest
/// fully-verifiable checkpoint from the engine's backend (falling back
/// across damaged versions — bad CRCs, missing shards, broken delta
/// parents — instead of erroring out) and run the §IV.C verification
/// cycle from it. In the report's [`RestartReport::storage`], the
/// payload/aux fields hold the recovered data/aux image sizes — the
/// writer-side header split is not recoverable after the fact.
pub fn checkpoint_recover_cycle_async(
    app: &dyn ScrutinyApp,
    analysis: &AnalysisReport,
    cfg: &RestartConfig,
    engine: &EngineHandle,
    recovery: &RecoveryConfig,
) -> Result<RecoverRestartReport, EngineError> {
    let recovered = recover_latest_checkpoint(engine, recovery)?;
    let storage = StorageBreakdown {
        payload_bytes: recovered.data.len(),
        aux_bytes: recovered.aux.len(),
        header_bytes: 0,
    };
    let restart = verify_restart_from(app, analysis, cfg, &recovered.checkpoint, storage)
        .map_err(EngineError::from)?;
    Ok(RecoverRestartReport {
        restart,
        recovery: recovered.report,
    })
}

/// Recover the newest fully-verifiable checkpoint from `engine`'s
/// backend (a thin [`RecoveryManager`] wrapper, so applications wire one
/// crate). The engine should be drained first — in-flight submissions
/// look like partial writes to the scan.
pub fn recover_latest_checkpoint(
    engine: &EngineHandle,
    recovery: &RecoveryConfig,
) -> Result<Recovered, EngineError> {
    RecoveryManager::new(engine.backend(), recovery.clone()).recover_latest()
}

/// Materialize every variable of a loaded checkpoint into full-size
/// buffers, in the order of the analysis spec.
pub fn materialize_all(
    checkpoint: &Checkpoint,
    analysis: &AnalysisReport,
    fill: FillPolicy,
) -> Result<Vec<VarData>, CkptError> {
    analysis
        .vars
        .iter()
        .map(|v| {
            let loaded = checkpoint.var(&v.spec.name)?;
            Ok(match v.spec.dtype {
                DType::F64 => VarData::F64(loaded.materialize_f64(fill)?),
                DType::C128 => VarData::C128(loaded.materialize_c128(fill)?),
                DType::I64 => VarData::I64(loaded.materialize_i64(0)?),
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::scrutinize;
    use crate::tiny::Heat1d;

    #[test]
    fn clean_restart_verifies_with_garbage_fill() {
        let app = Heat1d::new(16, 10, 5);
        let analysis = scrutinize(&app).unwrap();
        let report = checkpoint_restart_cycle(&app, &analysis, &RestartConfig::default()).unwrap();
        assert!(report.verified, "rel err {}", report.rel_err);
        assert!(report.storage.total() < report.full_storage.total());
    }

    #[test]
    fn restart_through_files_verifies() {
        let dir = std::env::temp_dir().join(format!("scrutiny_restart_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let app = Heat1d::new(12, 8, 3);
        let analysis = scrutinize(&app).unwrap();
        let cfg = RestartConfig {
            store_dir: Some(dir.clone()),
            ..Default::default()
        };
        let report = checkpoint_restart_cycle(&app, &analysis, &cfg).unwrap();
        assert!(report.verified);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupting_uncritical_elements_is_harmless() {
        let app = Heat1d::new(16, 10, 5);
        let analysis = scrutinize(&app).unwrap();
        let report = restart_with_mutation(
            &app,
            &analysis,
            &RestartConfig::default(),
            |bufs, analysis| {
                // Poison every uncritical element of every float variable.
                for (buf, crit) in bufs.iter_mut().zip(&analysis.vars) {
                    if let VarData::F64(v) = buf {
                        for i in crit.value_map.zeros() {
                            v[i] = 1e30;
                        }
                    }
                }
            },
        )
        .unwrap();
        assert!(report.verified, "uncritical corruption changed the output");
    }

    #[test]
    fn corrupting_critical_elements_breaks_verification() {
        let app = Heat1d::new(16, 10, 5);
        let analysis = scrutinize(&app).unwrap();
        let report = restart_with_mutation(
            &app,
            &analysis,
            &RestartConfig::default(),
            |bufs, analysis| {
                let crit = &analysis.vars[0];
                if let VarData::F64(v) = &mut bufs[0] {
                    let idx = crit.value_map.ones().next().unwrap();
                    v[idx] += 1.0e3;
                }
            },
        )
        .unwrap();
        assert!(!report.verified, "critical corruption went unnoticed");
    }

    #[test]
    fn async_engine_restart_verifies_on_all_backends() {
        use scrutiny_engine::{
            DirBackend, EngineConfig, MemBackend, ShardedBackend, StorageBackend,
        };
        use std::sync::Arc;

        let dir = std::env::temp_dir().join(format!("scrutiny_async_rs_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let app = Heat1d::new(16, 10, 5);
        let analysis = scrutinize(&app).unwrap();
        let cfg = RestartConfig::default();

        let backends: Vec<Arc<dyn StorageBackend>> = vec![
            Arc::new(MemBackend::new()),
            Arc::new(DirBackend::open(&dir).unwrap()),
            Arc::new(
                ShardedBackend::new(vec![
                    Arc::new(MemBackend::new()) as Arc<dyn StorageBackend>,
                    Arc::new(MemBackend::new()),
                ])
                .unwrap(),
            ),
        ];
        for backend in backends {
            let label = backend.label();
            for layout in [
                scrutiny_engine::Layout::Monolithic,
                scrutiny_engine::Layout::Sharded,
            ] {
                let engine = EngineHandle::open(
                    backend.clone(),
                    EngineConfig {
                        layout,
                        ..Default::default()
                    },
                )
                .unwrap();
                let report =
                    checkpoint_restart_cycle_async(&app, &analysis, &cfg, &engine).unwrap();
                assert!(
                    report.verified,
                    "backend {label} / {layout:?}: rel err {}",
                    report.rel_err
                );
                assert!(report.storage.total() < report.full_storage.total());
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn delta_chain_restart_verifies_with_garbage_fill() {
        use scrutiny_engine::{DeltaPolicy, EngineConfig, MemBackend};
        use std::sync::Arc;

        let app = Heat1d::new(16, 10, 5);
        let analysis = scrutinize(&app).unwrap();
        let cfg = RestartConfig::default();
        let engine = EngineHandle::open(
            Arc::new(MemBackend::new()),
            EngineConfig {
                delta: Some(DeltaPolicy {
                    page_bytes: 64,
                    rebase_every: 8,
                }),
                ..Default::default()
            },
        )
        .unwrap();

        // Grow a chain: a base plus two mutated delta epochs, so the
        // final verification epoch restores through real dirty pages.
        let vars = capture_state(&app);
        let plans = plans_for(&analysis, cfg.policy);
        for epoch in 0..3 {
            let mut vars = vars.clone();
            if let VarData::F64(v) = &mut vars[0].data {
                v[epoch] += 0.5; // localized, critical-region update
            }
            let t = engine.submit(&vars, &plans).unwrap();
            engine.wait(t).unwrap();
        }

        // The §IV.C cycle on top of the chain: the checkpoint under test
        // is itself a delta; restore walks base → deltas through the
        // existing reader, fills the pruned holes with garbage, and the
        // restarted run must still verify.
        let report = checkpoint_restart_cycle_async(&app, &analysis, &cfg, &engine).unwrap();
        assert!(report.verified, "rel err {}", report.rel_err);
        assert!(
            report.storage.total() < report.full_storage.total(),
            "a delta epoch must write less than a full checkpoint"
        );
    }

    #[test]
    fn recover_cycle_falls_back_to_intact_version_and_verifies() {
        use scrutiny_ckpt::names;
        use scrutiny_engine::{EngineConfig, MemBackend, RecoveryConfig, StorageBackend};
        use std::sync::Arc;

        let app = Heat1d::new(16, 10, 5);
        let analysis = scrutinize(&app).unwrap();
        let cfg = RestartConfig::default();
        let mem = Arc::new(MemBackend::new());
        let engine = EngineHandle::open(mem.clone(), EngineConfig::default()).unwrap();

        // Two epochs of the same boundary state; then the newest loses a
        // payload byte on the storage tier.
        for _ in 0..2 {
            let t = submit_checkpoint(&app, &analysis, cfg.policy, &engine).unwrap();
            engine.wait(t).unwrap();
        }
        let name = names::data(1);
        let mut bytes = mem.get(&name).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        mem.put(&name, &bytes).unwrap();

        let report = checkpoint_recover_cycle_async(
            &app,
            &analysis,
            &cfg,
            &engine,
            &RecoveryConfig::default(),
        )
        .unwrap();
        assert_eq!(report.recovery.recovered, Some(0));
        assert_eq!(report.recovery.rejected_versions(), vec![1]);
        assert!(
            report.restart.verified,
            "restart from the recovered version failed (rel err {})",
            report.restart.rel_err
        );
    }

    #[test]
    fn async_report_matches_blocking_report() {
        use scrutiny_engine::{EngineConfig, EngineHandle, MemBackend};
        use std::sync::Arc;

        let app = Heat1d::new(16, 10, 5);
        let analysis = scrutinize(&app).unwrap();
        let cfg = RestartConfig::default();
        let blocking = checkpoint_restart_cycle(&app, &analysis, &cfg).unwrap();
        let engine =
            EngineHandle::open(Arc::new(MemBackend::new()), EngineConfig::default()).unwrap();
        let asynced = checkpoint_restart_cycle_async(&app, &analysis, &cfg, &engine).unwrap();
        assert_eq!(asynced.storage, blocking.storage, "same bytes either path");
        assert_eq!(asynced.restarted, blocking.restarted, "same restart output");
    }

    #[test]
    fn full_policy_reproduces_exactly() {
        let app = Heat1d::new(8, 6, 2);
        let analysis = scrutinize(&app).unwrap();
        let cfg = RestartConfig {
            policy: Policy::Full,
            ..Default::default()
        };
        let report = checkpoint_restart_cycle(&app, &analysis, &cfg).unwrap();
        assert_eq!(report.abs_err, 0.0, "full restore must be bit-exact");
    }

    #[test]
    fn tiered_compressed_policy_verifies_and_shrinks_storage() {
        let app = Heat1d::new(16, 10, 5);
        let analysis = scrutinize(&app).unwrap();
        let pruned = checkpoint_restart_cycle(&app, &analysis, &RestartConfig::default()).unwrap();
        // keep=5 drops 24 mantissa bits (per-element error < 2^-28),
        // keep=6 drops 16 (< 2^-36): both inside the 1e-9 verification
        // tolerance, both strictly smaller than f64 critical storage.
        for keep in [5u8, 6] {
            let cfg = RestartConfig {
                policy: Policy::TieredCompressed {
                    hi_threshold: 0.9,
                    keep,
                },
                ..Default::default()
            };
            // In-memory path: truncated lo tier, no at-rest container.
            let report = checkpoint_restart_cycle(&app, &analysis, &cfg).unwrap();
            assert!(report.verified, "keep={keep}: rel err {}", report.rel_err);
            assert!(
                report.storage.payload_bytes < pruned.storage.payload_bytes,
                "keep={keep}: lossy tier {} !< prune-only {}",
                report.storage.payload_bytes,
                pruned.storage.payload_bytes
            );
            // Store path: same policy through files, with the at-rest
            // container applied on disk.
            let dir = std::env::temp_dir()
                .join(format!("scrutiny_restart_tc_{keep}_{}", std::process::id()));
            let _ = std::fs::remove_dir_all(&dir);
            let cfg_disk = RestartConfig {
                store_dir: Some(dir.clone()),
                ..cfg
            };
            let on_disk = checkpoint_restart_cycle(&app, &analysis, &cfg_disk).unwrap();
            assert!(on_disk.verified, "keep={keep} through files");
            std::fs::remove_dir_all(&dir).unwrap();
        }
    }

    #[test]
    fn tiered_policy_verifies_within_f32_tolerance() {
        let app = Heat1d::new(16, 10, 5);
        let analysis = scrutinize(&app).unwrap();
        let cfg = RestartConfig {
            policy: Policy::Tiered { hi_threshold: 0.9 },
            ..Default::default()
        };
        let report = checkpoint_restart_cycle(&app, &analysis, &cfg).unwrap();
        // f32 rounding perturbs the output slightly; it must stay small.
        assert!(report.rel_err < 1e-6, "rel err {}", report.rel_err);
        assert!(report.storage.payload_bytes < report.full_storage.payload_bytes);
    }
}
