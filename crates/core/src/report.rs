//! Text renderings of the paper's tables.

use crate::analysis::AnalysisReport;
use crate::plan::{plans_for, Policy};
use crate::spec::AppSpec;
use scrutiny_ckpt::writer::serialize;
use scrutiny_ckpt::{CkptError, VarPlan, VarRecord};

/// Table I: manually identified variables necessary for checkpointing.
pub fn format_table1(specs: &[AppSpec]) -> String {
    let mut out = String::from("Table I: variables necessary for checkpointing (class S)\n");
    out.push_str(&format!(
        "{:<6} {}\n",
        "Name", "Variables and their data structures"
    ));
    for app in specs {
        let decls: Vec<String> = app.vars.iter().map(|v| v.declaration()).collect();
        out.push_str(&format!("{:<6} {}\n", app.name, decls.join(", ")));
    }
    out
}

/// One row of Table II.
#[derive(Clone, Debug, PartialEq)]
pub struct Table2Row {
    /// `Benchmark(variable)` label, e.g. `BT(u)`.
    pub label: String,
    /// Uncritical element count.
    pub uncritical: usize,
    /// Total element count.
    pub total: usize,
}

impl Table2Row {
    /// Uncritical rate in percent.
    pub fn rate_pct(&self) -> f64 {
        100.0 * self.uncritical as f64 / self.total as f64
    }
}

/// Extract Table II rows (float array variables only, as in the paper —
/// integer scalars are control state and always critical).
pub fn table2_rows(report: &AnalysisReport) -> Vec<Table2Row> {
    report
        .vars
        .iter()
        .filter(|v| v.spec.dtype != scrutiny_ckpt::DType::I64 && v.total() > 1)
        .map(|v| Table2Row {
            label: format!("{}({})", report.app.name, v.spec.name),
            uncritical: v.uncritical(),
            total: v.total(),
        })
        .collect()
}

/// Render Table II.
pub fn format_table2(rows: &[Table2Row]) -> String {
    let mut out = String::from("Table II: number of uncritical elements\n");
    out.push_str(&format!(
        "{:<16} {:>10} {:>8} {:>15}\n",
        "Benchmark(var)", "Uncritical", "Total", "Uncritical rate"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<16} {:>10} {:>8} {:>14.1}%\n",
            r.label,
            r.uncritical,
            r.total,
            r.rate_pct()
        ));
    }
    out
}

/// One row of Table III.
#[derive(Clone, Debug)]
pub struct Table3Row {
    /// Benchmark name.
    pub bench: String,
    /// Full-checkpoint payload in KiB (paper's "Original").
    pub original_kib: f64,
    /// Pruned-checkpoint payload in KiB (paper's "Optimized").
    pub optimized_kib: f64,
    /// Auxiliary-file bytes (region pairs) in KiB — the cost the paper's
    /// table leaves implicit.
    pub aux_kib: f64,
}

impl Table3Row {
    /// Fraction of payload storage saved, in percent.
    pub fn saved_pct(&self) -> f64 {
        100.0 * (1.0 - self.optimized_kib / self.original_kib)
    }
}

/// Compute a Table III row from captured state and an analysis report.
pub fn table3_row(report: &AnalysisReport, captured: &[VarRecord]) -> Result<Table3Row, CkptError> {
    let full_plans: Vec<VarPlan> = captured.iter().map(|_| VarPlan::Full).collect();
    let pruned_plans = plans_for(report, Policy::PrunedValue);
    let full = serialize(captured, &full_plans)?.breakdown;
    let pruned = serialize(captured, &pruned_plans)?.breakdown;
    Ok(Table3Row {
        bench: report.app.name.clone(),
        original_kib: full.payload_kib(),
        optimized_kib: pruned.payload_kib(),
        aux_kib: pruned.aux_bytes as f64 / 1024.0,
    })
}

/// Render Table III.
pub fn format_table3(rows: &[Table3Row]) -> String {
    let mut out = String::from("Table III: checkpointing storage\n");
    out.push_str(&format!(
        "{:<10} {:>12} {:>12} {:>13} {:>10}\n",
        "Benchmark", "Original", "Optimized", "Storage saved", "Aux file"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<10} {:>10.1}kb {:>10.1}kb {:>12.1}% {:>8.2}kb\n",
            r.bench,
            r.original_kib,
            r.optimized_kib,
            r.saved_pct(),
            r.aux_kib
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::scrutinize;
    use crate::restart::capture_state;
    use crate::spec::VarSpec;
    use crate::tiny::Heat1d;

    #[test]
    fn table1_lists_declarations() {
        let spec = AppSpec {
            name: "BT".into(),
            class: "S".into(),
            vars: vec![
                VarSpec::f64("u", &[12, 13, 13, 5]),
                VarSpec::int_scalar("step"),
            ],
        };
        let s = format_table1(&[spec]);
        assert!(s.contains("BT"));
        assert!(s.contains("double u[12][13][13][5]"));
        assert!(s.contains("int step"));
    }

    #[test]
    fn table2_rows_skip_scalars() {
        let app = Heat1d::new(16, 8, 4);
        let report = scrutinize(&app).unwrap();
        let rows = table2_rows(&report);
        assert_eq!(rows.len(), 2); // temp + workspace; `it` excluded
        assert_eq!(rows[0].label, "HEAT1D(temp)");
        assert_eq!(rows[0].uncritical, 2);
        let rendered = format_table2(&rows);
        assert!(rendered.contains("HEAT1D(temp)"));
    }

    #[test]
    fn table3_row_reflects_savings() {
        let app = Heat1d::new(16, 8, 4);
        let report = scrutinize(&app).unwrap();
        let captured = capture_state(&app);
        let row = table3_row(&report, &captured).unwrap();
        assert!(row.optimized_kib < row.original_kib);
        assert!(row.saved_pct() > 0.0);
        let rendered = format_table3(&[row]);
        assert!(rendered.contains("HEAT1D"));
    }
}
