//! # scrutiny-core — AD-driven scrutiny of checkpoint variables
//!
//! The primary contribution of *"Scrutinizing Variables for Checkpoint
//! Using Automatic Differentiation"* (SC 2024), as a reusable library.
//!
//! An HPC application declares its checkpoint variables (the paper's
//! Table I) and exposes its main computation generically over a
//! differentiable scalar. This crate then:
//!
//! 1. **Scrutinizes** every element ([`scrutinize`]): an AD run converts
//!    each checkpointed element into a tape leaf at the checkpoint
//!    boundary; one reverse sweep yields `∂output/∂element` for all of
//!    them. Zero derivative ⇒ *uncritical* (paper §III.A). A structural
//!    reachability sweep provides a second, value-independent criterion —
//!    available as a full static analyzer backend
//!    ([`Analyzer::DataDep`]), cross-checked against the AD verdict by
//!    [`scrutinize_differential`], which classifies every mismatch into a
//!    typed [`Disagreement`] with a witness data-flow path.
//! 2. **Plans** storage ([`plan::plans_for`]): criticality bitmaps become
//!    run-length regions (the auxiliary file), optionally precision-tiered
//!    by gradient magnitude (paper §VII future work).
//! 3. **Verifies by restart** ([`restart::checkpoint_restart_cycle`]): a
//!    pruned checkpoint is written, restored with garbage in the holes,
//!    and the run must reproduce the uninterrupted ("golden") output —
//!    the paper's §IV.C experiment.
//!
//! ## Writing an application
//!
//! Implement [`ScrutinyApp`] by exposing the same generic run for
//! `R = f64` and `R = Adj`, calling the [`CkptSite`] exactly once at the
//! checkpoint boundary with mutable views of every checkpoint variable.
//! See [`tiny::Heat1d`] for a complete minimal example, and the
//! `scrutiny-npb` crate for the eight NPB ports used in the paper.
//!
//! ## Example: scrutinize, then verify by restart
//!
//! ```
//! use scrutiny_core::tiny::Heat1d;
//! use scrutiny_core::{
//!     checkpoint_restart_cycle, scrutinize, FillPolicy, Policy, RestartConfig,
//! };
//!
//! // 1-D heat diffusion: live state, tail padding, and a scratch array.
//! let app = Heat1d::new(32, 20, 10);
//!
//! // One AD run + one reverse sweep classifies every checkpointed element.
//! let analysis = scrutinize(&app).unwrap();
//! assert_eq!(analysis.vars.len(), 3);
//!
//! // A pruned checkpoint restored with garbage in the uncritical holes
//! // must still reproduce the uninterrupted run's output (paper §IV.C).
//! let cfg = RestartConfig {
//!     policy: Policy::PrunedValue,
//!     fill: FillPolicy::Garbage(42),
//!     store_dir: None,
//! };
//! let report = checkpoint_restart_cycle(&app, &analysis, &cfg).unwrap();
//! assert!(report.verified);
//! assert!(report.storage.total() < report.full_storage.total());
//! ```

#![warn(missing_docs)]

pub mod analysis;
pub mod app;
pub mod plan;
pub mod report;
pub mod restart;
pub mod site;
pub mod spec;
pub mod tiny;

pub use analysis::{
    scrutinize, scrutinize_differential, scrutinize_with, scrutinize_with_capacity, AnalysisReport,
    Analyzer, DifferentialReport, Disagreement, DisagreementKind, ScrutinyOptions, VarCriticality,
};
pub use app::{RunOutcome, ScrutinyApp};
pub use plan::{codec_for, Policy};
pub use report::{
    format_table1, format_table2, format_table3, table2_rows, table3_row, Table2Row, Table3Row,
};
pub use restart::{
    checkpoint_recover_cycle_async, checkpoint_restart_cycle, checkpoint_restart_cycle_async,
    recover_latest_checkpoint, submit_checkpoint, verify_restart_from, RecoverRestartReport,
    RestartConfig, RestartReport,
};
pub use site::{CaptureSite, CkptSite, LeafSite, RestoreSite, VarRefMut};
pub use spec::{AppSpec, VarSpec};

// Re-export the scalar abstraction so applications depend on one crate.
pub use scrutiny_ad::{
    AdError, Adj, Cplx, DataDep, Dual, Real, SweepConfig, SweepStats, TapeCheckpointConfig,
    TapeReplay, Witness,
};
// Re-export the observability substrate: every layer below reports into a
// [`Recorder`], and the stats structs are views over its snapshots.
pub use scrutiny_ckpt::{Bitmap, DType, FillPolicy, Regions, VarData, VarPlan, VarRecord};
pub use scrutiny_obs::{point, span, FieldValue, Recorder, Snapshot as ObsSnapshot, SpanView};
// Re-export the async checkpoint engine (and its recovery side) so
// applications wire one crate.
pub use scrutiny_engine::{
    DeltaPolicy, DirBackend, EngineConfig, EngineError, EngineHandle, Layout, MemBackend,
    Recovered, RecoveryConfig, RecoveryManager, RecoveryReport, RecoveryWalk, RejectedVersion,
    RestoreOptions, RestoreStats, ShardedBackend, Snapshot, StorageBackend, Ticket,
};
