//! Offline stand-in for the [`criterion`](https://docs.rs/criterion) crate.
//!
//! Implements exactly the subset of criterion's API that the
//! `scrutiny-bench` harnesses use — [`Criterion`], [`BenchmarkGroup`],
//! [`Bencher::iter`], [`black_box`] and the [`criterion_group!`] /
//! [`criterion_main!`] macros — so the workspace builds and `cargo bench`
//! runs without a registry. Benches execute for real and print wall-clock
//! statistics; there is no HTML report, outlier analysis or baseline
//! comparison. Swap the path entry in the root `Cargo.toml` for
//! `criterion = "0.5"` to use the real crate.

#![warn(missing_docs)]

use std::sync::Mutex;
use std::time::{Duration, Instant};

/// One finished benchmark's identity and raw timed samples, retrievable
/// via [`take_results`] after the groups have run.
///
/// This is a shim extension (real criterion exposes results through its
/// report files instead): the `scrutiny-bench` harnesses drain it into
/// their machine-readable `BENCH_<name>.json` summaries.
#[derive(Clone, Debug)]
pub struct BenchResult {
    /// The benchmark id (`group/function`).
    pub id: String,
    /// The timed samples, sorted ascending.
    pub timings: Vec<Duration>,
}

static RESULTS: Mutex<Vec<BenchResult>> = Mutex::new(Vec::new());

/// Drain every [`BenchResult`] recorded since the last call (shim
/// extension; see [`BenchResult`]).
pub fn take_results() -> Vec<BenchResult> {
    std::mem::take(&mut RESULTS.lock().unwrap())
}

/// Prevent the compiler from optimizing away a benchmarked value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Entry point handed to each `criterion_group!` target function.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        // The real criterion defaults to 100 samples; the shim keeps runs
        // short since it reports plain wall-clock statistics anyway.
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }

    /// Benchmark a single function outside of any group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(id, self.sample_size, f);
        self
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples collected per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Time `f` under the id `group-name/id`.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, f);
        self
    }

    /// Finish the group. (The shim reports per-benchmark, so this is a no-op.)
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; call [`Bencher::iter`] with the code
/// under test.
pub struct Bencher {
    samples: usize,
    timings: Vec<Duration>,
}

impl Bencher {
    /// Run `f` once as warmup, then `sample_size` timed times.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        black_box(f());
        self.timings.reserve(self.samples);
        for _ in 0..self.samples {
            let t0 = Instant::now();
            black_box(f());
            self.timings.push(t0.elapsed());
        }
    }
}

fn run_one<F>(id: &str, samples: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut b = Bencher {
        samples,
        timings: Vec::new(),
    };
    f(&mut b);
    if b.timings.is_empty() {
        println!("{id:<40} (no samples)");
        return;
    }
    b.timings.sort();
    RESULTS.lock().unwrap().push(BenchResult {
        id: id.to_string(),
        timings: b.timings.clone(),
    });
    let total: Duration = b.timings.iter().sum();
    let mean = total / b.timings.len() as u32;
    let min = b.timings[0];
    let max = *b.timings.last().unwrap();
    println!(
        "{id:<40} time: [{} {} {}]  ({} samples)",
        fmt_duration(min),
        fmt_duration(mean),
        fmt_duration(max),
        b.timings.len()
    );
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// Define a benchmark group function from one or more target functions, each
/// taking `&mut Criterion`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Define `main` for a `harness = false` bench target from one or more
/// groups declared with [`criterion_group!`].
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Cargo passes `--bench` (and any user filter) to the binary;
            // the shim runs everything regardless.
            $( $group(); )+
        }
    };
}
