//! Offline stand-in for the [`proptest`](https://docs.rs/proptest) crate.
//!
//! Implements the subset of proptest's API used by this workspace's property
//! tests: the [`proptest!`] macro (with an optional `#![proptest_config(..)]`
//! header), [`ProptestConfig::with_cases`], the `prop_assert!` /
//! `prop_assert_eq!` / `prop_assume!` macros, range strategies over the
//! primitive numeric types, and [`collection::vec`].
//!
//! Differences from the real crate: case generation is deterministic (the
//! RNG is seeded from the test's module path and name, so failures
//! reproduce across runs), and there is **no shrinking** — a failing case
//! reports its generated inputs but is not minimized. Swap the path entry in
//! the root `Cargo.toml` for `proptest = "1"` to use the real crate.

#![warn(missing_docs)]

use std::ops::Range;

/// Everything a property-test file needs: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, ProptestConfig,
        Strategy, TestCaseError,
    };
}

/// Per-`proptest!` block configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of successful (non-rejected) cases required per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config that runs `cases` successful cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// An assertion failed; the property is falsified.
    Fail(String),
    /// `prop_assume!` rejected the inputs; generate a fresh case.
    Reject,
}

impl TestCaseError {
    /// Construct a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
}

/// Deterministic splitmix64 generator used to produce case inputs.
pub struct TestRng(u64);

impl TestRng {
    /// Next raw 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Seed a [`TestRng`] for one attempt of one named property. Deterministic:
/// the same (name, attempt) pair always yields the same inputs.
pub fn test_rng(name: &str, attempt: u32) -> TestRng {
    // FNV-1a over the test name, mixed with the attempt counter.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    TestRng(h ^ ((attempt as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)))
}

/// A source of random values of one type, sampled per generated case.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;
    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut TestRng) -> f32 {
        self.start + (rng.next_f64() as f32) * (self.end - self.start)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let span = (self.end as i128 - self.start as i128).max(1) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategies over collections.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// A strategy producing `Vec`s with lengths drawn from `len` and
    /// elements drawn from `element`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// `Vec` strategy: elements from `element`, length from `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = Strategy::sample(&self.len, rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Assert a condition inside a `proptest!` body; on failure the current case
/// fails with the generated inputs reported.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Assert two expressions are equal inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{} == {}` ({:?} vs {:?})",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
}

/// Assert two expressions are unequal inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: `{} != {}` (both {:?})",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Reject the current case (e.g. inputs outside the property's domain); a
/// replacement case is generated without counting toward the case budget.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Declare property tests. Each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` that runs the body over `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg); $($rest)*);
    };
    (@impl ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            let mut passed: u32 = 0;
            let mut attempt: u32 = 0;
            let max_attempts = cfg.cases.saturating_mul(16).max(cfg.cases);
            while passed < cfg.cases {
                attempt += 1;
                if attempt > max_attempts {
                    panic!(
                        "proptest '{}': too many rejected cases ({} attempts for {} cases)",
                        stringify!($name), attempt, cfg.cases
                    );
                }
                let mut rng = $crate::test_rng(
                    concat!(module_path!(), "::", stringify!($name)),
                    attempt,
                );
                $( let $arg = $crate::Strategy::sample(&($strat), &mut rng); )+
                let inputs = format!(
                    concat!($(stringify!($arg), " = {:?}, "),+),
                    $(&$arg),+
                );
                let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { $body Ok(()) })();
                match outcome {
                    Ok(()) => passed += 1,
                    Err($crate::TestCaseError::Reject) => {}
                    Err($crate::TestCaseError::Fail(msg)) => panic!(
                        "proptest '{}' falsified (case {}): {}\n  inputs: {}",
                        stringify!($name), attempt, msg, inputs
                    ),
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::ProptestConfig::default()); $($rest)*);
    };
}
