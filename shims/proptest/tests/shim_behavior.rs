//! Behavioural checks of the shim itself: a falsified property must panic
//! (reporting its inputs), rejections must resample rather than fail, and
//! generation must be deterministic across runs.

use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A property that is actually false must panic.
    #[test]
    #[should_panic(expected = "falsified")]
    fn falsified_property_panics(x in 0.0f64..1.0) {
        prop_assert!(x < 0.5, "x was {x}");
    }

    /// Heavy rejection still completes: ~half the samples are assumed away.
    #[test]
    fn rejection_resamples(x in 0.0f64..1.0) {
        prop_assume!(x < 0.5);
        prop_assert!(x < 0.5);
    }

    /// Range strategies respect their bounds across integer widths.
    #[test]
    fn ranges_in_bounds(a in 3u8..7, b in -5i64..5, n in 1usize..16) {
        prop_assert!((3..7).contains(&a));
        prop_assert!((-5..5).contains(&b));
        prop_assert!((1..16).contains(&n));
    }

    /// Collection lengths stay inside the requested range.
    #[test]
    fn vec_len_in_bounds(v in proptest::collection::vec(0.0f64..1.0, 2..9)) {
        prop_assert!(v.len() >= 2 && v.len() < 9);
        for &x in &v {
            prop_assert!((0.0..1.0).contains(&x));
        }
    }
}

/// The per-test RNG is deterministic: same name + attempt ⇒ same stream.
#[test]
fn rng_is_deterministic() {
    let mut a = proptest::test_rng("some::test", 3);
    let mut b = proptest::test_rng("some::test", 3);
    assert_eq!(a.next_u64(), b.next_u64());
    let mut c = proptest::test_rng("some::test", 4);
    assert_ne!(a.next_u64(), c.next_u64());
}
