//! # scrutiny — umbrella crate for the workspace
//!
//! Reproduction of *"Scrutinizing Variables for Checkpoint Using Automatic
//! Differentiation"* (SC 2024). This crate only re-exports the workspace
//! members under stable module names so applications can depend on a single
//! crate; the repo-root `tests/` and `examples/` build against it.
//!
//! See the [`core`] crate docs for the end-to-end workflow, and the root
//! `README.md` for the architecture diagram.
//!
//! ```
//! use scrutiny::core::tiny::Heat1d;
//! use scrutiny::core::scrutinize;
//!
//! let analysis = scrutinize(&Heat1d::new(16, 8, 4)).unwrap();
//! // temp is critical, the overwritten workspace is not (paper §III.A).
//! assert!(analysis.vars[0].critical() > 0);
//! assert_eq!(analysis.vars[1].critical(), 0);
//! ```

#![warn(missing_docs)]

/// Zero-dependency tracing/metrics recorder every other crate reports
/// into: [`scrutiny_obs::Recorder`], spans, JSONL export.
pub use scrutiny_obs as obs;

/// Tape-based reverse-mode AD: [`scrutiny_ad::Adj`], [`scrutiny_ad::Tape`],
/// forward-mode [`scrutiny_ad::Dual`], and the [`scrutiny_ad::Real`] scalar
/// abstraction the NPB kernels are generic over.
pub use scrutiny_ad as ad;

/// Criticality-pruned checkpoint/restart: bitmaps, run-length regions,
/// the versioned on-disk format and the keep-last-k store.
pub use scrutiny_ckpt as ckpt;

/// Asynchronous, sharded checkpoint pipeline with pluggable storage
/// backends: [`scrutiny_engine::EngineHandle`], [`scrutiny_engine::DirBackend`],
/// [`scrutiny_engine::MemBackend`], [`scrutiny_engine::ShardedBackend`].
pub use scrutiny_engine as engine;

/// The analysis pipeline: scrutinize → plan → restart-verify.
pub use scrutiny_core as core;

/// NAS Parallel Benchmark ports (class S), generic over the AD scalar.
pub use scrutiny_npb as npb;

/// Fault-injection campaigns validating criticality maps.
pub use scrutiny_faultinj as faultinj;

/// Multi-tenant checkpoint daemon and its wire-protocol client:
/// [`scrutinyd::Daemon`], [`scrutinyd::RemoteBackend`].
pub use scrutinyd as daemon;

/// ASCII/PGM/SVG visualization of criticality distributions.
pub use scrutiny_viz as viz;

/// Experiment harness: paper-expectation tables used by benches and bins.
pub use scrutiny_bench as bench;

/// Host crate for the repo-root integration suites.
pub use scrutiny_integration as integration;
