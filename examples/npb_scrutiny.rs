//! Scrutinize one NPB benchmark (class S) and visualize the result.
//!
//! Run with: `cargo run --release -p scrutiny-bench --example npb_scrutiny [BT|SP|LU|MG|CG|FT|EP]`

use scrutiny_core::{format_table2, scrutinize, table2_rows, ScrutinyApp};
use scrutiny_npb::{Bt, Cg, Ep, Ft, Lu, Mg, Sp};
use scrutiny_viz::ascii::component_slice;
use scrutiny_viz::{detect_planes, runlength_chart, slice_ascii};

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "CG".into());
    let app: Box<dyn ScrutinyApp> = match which.to_uppercase().as_str() {
        "BT" => Box::new(Bt::class_s()),
        "SP" => Box::new(Sp::class_s()),
        "LU" => Box::new(Lu::class_s()),
        "MG" => Box::new(Mg::class_s()),
        "FT" => Box::new(Ft::class_s()),
        "EP" => Box::new(Ep::class_s()),
        _ => Box::new(Cg::class_s()),
    };
    let report = scrutinize(app.as_ref()).unwrap();
    print!("{}", format_table2(&table2_rows(&report)));
    println!(
        "tape: {} nodes ({:.1} MB), {:.2} s",
        report.tape_stats.nodes,
        report.tape_stats.bytes as f64 / 1e6,
        report.analysis_seconds
    );
    for var in &report.vars {
        if var.total() <= 1 {
            continue;
        }
        println!("\n{} ({} elements):", var.spec.name, var.total());
        match var.spec.shape.as_slice() {
            [d0, d1, d2, nc] => {
                let (cube, dims) = component_slice(&var.value_map, [*d0, *d1, *d2, *nc], 0);
                print!("{}", slice_ascii(&cube, dims, 0, d0 / 2));
                println!("dead planes: {:?}", detect_planes(&cube, dims));
            }
            [d0, d1, d2] => {
                println!(
                    "dead planes: {:?}",
                    detect_planes(&var.value_map, [*d0, *d1, *d2])
                );
            }
            _ => print!("{}", runlength_chart(&var.value_map, 72)),
        }
    }
}
