//! The whole lifecycle — record → sweep → analyze → submit → publish →
//! corrupt → recover — under one live recorder, exported three ways:
//! a JSONL event log (`obs_events.jsonl`, the machine-readable form the
//! CI schema gate validates), an SVG span timeline
//! (`obs_timeline.svg`), and the one-page text snapshot on stdout.
//!
//! Run with: `cargo run --release --example observed_lifecycle [out_dir]`

use scrutiny_core::{
    scrutinize_with, EngineConfig, EngineHandle, MemBackend, Policy, RecoveryWalk, ScrutinyOptions,
};
use scrutiny_faultinj::StorageScenario;
use scrutiny_npb::{burn_in_recover_observed, Cg};
use scrutiny_obs::Recorder;
use scrutiny_viz::timeline_svg;
use std::path::PathBuf;
use std::sync::Arc;

fn main() {
    let out: PathBuf = std::env::args().nth(1).unwrap_or_else(|| ".".into()).into();
    let rec = Recorder::with_capacity(1 << 16);

    // Record → sweep → analyze, reporting into the shared recorder.
    let app = Cg::mini();
    let analysis = scrutinize_with(
        &app,
        &ScrutinyOptions {
            recorder: rec.clone(),
            ..Default::default()
        },
    )
    .unwrap();

    // Burn in a few epochs through the async engine...
    let engine = EngineHandle::open(
        Arc::new(MemBackend::new()),
        EngineConfig {
            recorder: rec.clone(),
            ..Default::default()
        },
    )
    .unwrap();
    // ...then damage the newest checkpoint and recover through the
    // fallback scan. Every step lands in the same event ring.
    let report = burn_in_recover_observed(
        &app,
        &analysis,
        &engine,
        3,
        Policy::PrunedValue,
        StorageScenario::FlippedPayloadByte,
        &rec,
    )
    .unwrap();

    let snap = rec.snapshot();
    std::fs::create_dir_all(&out).unwrap();
    let jsonl_path = out.join("obs_events.jsonl");
    snap.write_jsonl(&jsonl_path).unwrap();
    let svg_path = out.join("obs_timeline.svg");
    std::fs::write(&svg_path, timeline_svg(&snap.spans(), 1200)).unwrap();

    print!("{}", snap.render_text());
    let walk = RecoveryWalk::from_snapshot(&snap);
    println!(
        "damaged {}; recovery walked {:?}, rejected {:?}, recovered v{}",
        report.damaged, walk.candidates, walk.rejected, report.recovered_version
    );
    println!(
        "restart verified: {} (rel_err {:.2e})",
        report.verified, report.rel_err
    );
    println!("wrote {} and {}", jsonl_path.display(), svg_path.display());
}
