//! Checkpoint/restart with failure and fault injection on NPB BT.
//!
//! Run with: `cargo run --release -p scrutiny-bench --example checkpoint_restart`

use scrutiny_core::{checkpoint_restart_cycle, scrutinize, FillPolicy, Policy, RestartConfig};
use scrutiny_faultinj::{run_campaign, CampaignConfig, Corruption, Target};
use scrutiny_npb::Bt;

fn main() {
    let app = Bt::class_s();
    println!("scrutinizing BT class S…");
    let analysis = scrutinize(&app).unwrap();

    let dir = std::env::temp_dir().join("scrutiny_example_ckpt");
    let cfg = RestartConfig {
        policy: Policy::PrunedValue,
        fill: FillPolicy::Garbage(7),
        store_dir: Some(dir.clone()),
    };
    let report = checkpoint_restart_cycle(&app, &analysis, &cfg).expect("cycle");
    println!(
        "pruned checkpoint on disk: {} B (payload {} B + aux {} B); full would be {} B",
        report.storage.total(),
        report.storage.payload_bytes,
        report.storage.aux_bytes,
        report.full_storage.total()
    );
    println!(
        "restart verified: {} (golden {:.6}, restarted {:.6})",
        report.verified, report.golden, report.restarted
    );

    // Fault injection (paper §IV.C): garbage in uncritical elements is
    // harmless; bit flips in critical elements are caught.
    let unc = run_campaign(&app, &analysis, &CampaignConfig::default());
    println!(
        "uncritical corruption: {}/{} runs verified (max rel err {:.2e})",
        unc.verified,
        unc.trials(),
        unc.max_rel_err
    );
    let crit = run_campaign(
        &app,
        &analysis,
        &CampaignConfig {
            target: Target::Critical,
            corruption: Corruption::Poison(1e9),
            ..Default::default()
        },
    );
    println!(
        "critical corruption:   {}/{} runs failed verification (as they must)",
        crit.failed,
        crit.trials()
    );
    let _ = std::fs::remove_dir_all(&dir);
}
