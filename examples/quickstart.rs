//! Quickstart: the full scrutiny pipeline on a 30-line application.
//!
//! Run with: `cargo run --release --example quickstart`

use scrutiny_core::tiny::Heat1d;
use scrutiny_core::{
    checkpoint_restart_cycle, format_table2, scrutinize, table2_rows, FillPolicy, Policy,
    RestartConfig,
};

fn main() {
    // 1. An application with declared checkpoint variables: 1-D heat
    //    diffusion with ghost cells, tail padding, and a scratch array.
    let app = Heat1d::new(32, 20, 10);

    // 2. Scrutinize every element: one AD run, one reverse sweep.
    let analysis = scrutinize(&app).unwrap();
    print!("{}", format_table2(&table2_rows(&analysis)));
    println!(
        "tape: {} nodes, {:.2} ms\n",
        analysis.tape_stats.nodes,
        analysis.analysis_seconds * 1e3
    );
    for var in &analysis.vars {
        println!(
            "{:<10} critical regions: {:?}",
            var.spec.name,
            var.regions().runs()
        );
    }

    // 3. Write a pruned checkpoint, fail, restart with garbage holes.
    let cfg = RestartConfig {
        policy: Policy::PrunedValue,
        fill: FillPolicy::Garbage(42),
        store_dir: None,
    };
    let report = checkpoint_restart_cycle(&app, &analysis, &cfg).expect("cycle");
    println!(
        "\nrestart verified: {} (|Δ| = {:.2e}); checkpoint {} B vs full {} B",
        report.verified,
        report.abs_err,
        report.storage.total(),
        report.full_storage.total()
    );
}
