//! Storage comparison: full vs AD-pruned vs page-incremental checkpoints.
//!
//! Run with: `cargo run --release -p scrutiny-bench --example storage_report`

use scrutiny_ckpt::incremental::IncrementalTracker;
use scrutiny_core::restart::capture_state;
use scrutiny_core::ScrutinyApp;
use scrutiny_core::{scrutinize, table3_row};
use scrutiny_npb::{Bt, Cg, Mg};

fn main() {
    println!(
        "{:<6} {:>11} {:>11} {:>14}",
        "Bench", "full", "AD-pruned", "incr (2nd ckpt)"
    );
    let apps: Vec<Box<dyn ScrutinyApp>> = vec![
        Box::new(Bt::class_s()),
        Box::new(Mg::class_s()),
        Box::new(Cg::class_s()),
    ];
    for app in &apps {
        let analysis = scrutinize(app.as_ref()).unwrap();
        let captured = capture_state(app.as_ref());
        let row = table3_row(&analysis, &captured).expect("in-memory");

        // Page-incremental baseline: first checkpoint writes all pages,
        // an identical second epoch writes none — it removes *temporal*
        // redundancy, orthogonal to the paper's *semantic* pruning.
        let named: Vec<(String, scrutiny_ckpt::VarData)> = captured
            .iter()
            .map(|v| (v.name.clone(), v.data.clone()))
            .collect();
        let mut tracker = IncrementalTracker::new();
        tracker.step(&named);
        let second = tracker.step(&named);

        println!(
            "{:<6} {:>9.1}kb {:>9.1}kb {:>12.1}kb",
            analysis.app.name,
            row.original_kib,
            row.optimized_kib,
            second.bytes_written as f64 / 1024.0,
        );
    }
    println!("\n(the incremental column shows an unchanged second epoch; real epochs");
    println!(" dirty most solver pages, while AD pruning saves on every epoch)");
}
