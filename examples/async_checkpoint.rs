//! Asynchronous checkpointing on NPB CG: submit returns immediately,
//! workers serialize shards and write in the background, and the restart
//! path consumes the engine-written checkpoint.
//!
//! Run with: `cargo run --release --example async_checkpoint`

use scrutiny_core::restart::capture_state;
use scrutiny_core::{
    checkpoint_restart_cycle_async, plan::plans_for, scrutinize, DirBackend, EngineConfig,
    EngineHandle, Layout, MemBackend, Policy, RestartConfig, ShardedBackend, StorageBackend,
};
use scrutiny_npb::{burn_in, Cg};
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let app = Cg::class_s();
    println!("scrutinizing CG class S…");
    let analysis = scrutinize(&app).unwrap();
    let vars = capture_state(&app);
    let plans = plans_for(&analysis, Policy::PrunedValue);

    // --- blocking save vs async submit on the compute thread ------------
    let dir = std::env::temp_dir().join("scrutiny_example_async");
    let _ = std::fs::remove_dir_all(&dir);
    let mut store = scrutiny_ckpt::CheckpointStore::open(dir.join("blocking"), 2).unwrap();
    let t0 = Instant::now();
    store.save(&vars, &plans).unwrap();
    let blocking = t0.elapsed();

    let engine = EngineHandle::open(
        Arc::new(DirBackend::open(dir.join("async")).unwrap()),
        EngineConfig::default(),
    )
    .unwrap();
    let t0 = Instant::now();
    let ticket = engine.submit(&vars, &plans).unwrap();
    let submit = t0.elapsed();
    let storage = engine.wait(ticket).unwrap();
    println!(
        "blocking save: {blocking:?}   async submit: {submit:?}   ({:.1}% of blocking; {} B stored)",
        100.0 * submit.as_secs_f64() / blocking.as_secs_f64().max(1e-12),
        storage.total(),
    );

    // --- restart verification through each backend -----------------------
    let backends: Vec<(&str, Arc<dyn StorageBackend>)> = vec![
        ("mem", Arc::new(MemBackend::new())),
        (
            "dir",
            Arc::new(DirBackend::open(dir.join("verify")).unwrap()),
        ),
        (
            "sharded(mem×3)",
            Arc::new(
                ShardedBackend::new(vec![
                    Arc::new(MemBackend::new()) as Arc<dyn StorageBackend>,
                    Arc::new(MemBackend::new()),
                    Arc::new(MemBackend::new()),
                ])
                .unwrap(),
            ),
        ),
    ];
    for (name, backend) in backends {
        let engine = EngineHandle::open(
            backend,
            EngineConfig {
                layout: Layout::Sharded,
                ..Default::default()
            },
        )
        .unwrap();
        let report =
            checkpoint_restart_cycle_async(&app, &analysis, &RestartConfig::default(), &engine)
                .unwrap();
        println!(
            "restart via {name:<14} verified: {} (rel err {:.2e}, {} B vs full {} B)",
            report.verified,
            report.rel_err,
            report.storage.total(),
            report.full_storage.total()
        );
    }

    // --- multi-epoch burn-in: compute overlaps draining ------------------
    let engine = EngineHandle::open(Arc::new(MemBackend::new()), EngineConfig::default()).unwrap();
    let report = burn_in(&app, &analysis, &engine, 4, Policy::PrunedValue).unwrap();
    println!(
        "burn-in {}: {} epochs, {} payload bytes, verified: {}",
        report.app, report.epochs, report.payload_bytes, report.verified
    );
    let _ = std::fs::remove_dir_all(&dir);
}
