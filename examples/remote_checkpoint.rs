//! Checkpointing as a service: spawn an in-process `scrutinyd`, run two
//! tenants' NPB burn-ins against it over a loopback socket, corrupt one
//! tenant's newest checkpoint at rest, recover it over the wire, and
//! print the daemon's per-tenant accounting plus where its single obs
//! JSONL log landed.
//!
//! The same binary shape works across processes/machines: point
//! `RemoteBackend::connect` at a `scrutinyd --tcp host:port` (or
//! `--unix /path.sock`) started elsewhere and nothing in the engine,
//! recovery, or fault-injection code changes — `RemoteBackend` is just
//! another `StorageBackend`.
//!
//! Run with: `cargo run --release --example remote_checkpoint [out_dir]`

use scrutiny_ckpt::names::Tenant;
use scrutiny_core::{scrutinize, Policy};
use scrutiny_engine::{
    DirBackend, EngineConfig, EngineHandle, RecoveryConfig, RecoveryManager, StorageBackend,
};
use scrutiny_faultinj::StorageScenario;
use scrutiny_npb::{burn_in, Cg, Ft};
use scrutiny_obs::Recorder;
use scrutinyd::{Daemon, DaemonConfig, RemoteBackend};
use std::path::PathBuf;
use std::sync::Arc;

fn main() {
    let out: PathBuf = std::env::args().nth(1).unwrap_or_else(|| ".".into()).into();
    std::fs::create_dir_all(&out).unwrap();

    // ---- The service: one storage pool, many tenants, one log. ----
    let pool = Arc::new(DirBackend::open(out.join("pool")).unwrap());
    let obs = out.join("scrutinyd.jsonl");
    let daemon = Daemon::spawn_tcp(
        "127.0.0.1:0",
        pool,
        DaemonConfig {
            recorder: Recorder::new(),
            obs_jsonl: Some(obs.clone()),
            max_versions: Some(8),
            ..DaemonConfig::default()
        },
    )
    .unwrap();
    println!("scrutinyd serving on {}", daemon.endpoint());

    // ---- Two tenants burn in concurrently over the wire. ----
    let endpoint = daemon.endpoint();
    let workers: Vec<_> = [("cg_team", 0usize), ("ft_team", 1usize)]
        .into_iter()
        .map(|(tenant, which)| {
            let endpoint = endpoint.clone();
            std::thread::spawn(move || {
                let remote = Arc::new(
                    RemoteBackend::connect(endpoint, Some(Tenant::new(tenant).unwrap())).unwrap(),
                );
                let engine = EngineHandle::open(remote.clone(), EngineConfig::default()).unwrap();
                let report = if which == 0 {
                    let app = Cg::mini();
                    let analysis = scrutinize(&app).unwrap();
                    burn_in(&app, &analysis, &engine, 3, Policy::PrunedValue).unwrap()
                } else {
                    let app = Ft::mini();
                    let analysis = scrutinize(&app).unwrap();
                    burn_in(&app, &analysis, &engine, 3, Policy::PrunedValue).unwrap()
                };
                drop(engine);
                println!(
                    "  tenant {tenant:<8} {} epochs, {} payload bytes, verified={}",
                    report.epochs, report.payload_bytes, report.verified
                );
                remote
            })
        })
        .collect();
    let remotes: Vec<Arc<RemoteBackend>> = workers.into_iter().map(|w| w.join().unwrap()).collect();

    // ---- Corrupt cg_team's newest checkpoint, recover over the wire. ----
    let victim = remotes[0].clone();
    let versions = scrutiny_engine::list_versions(victim.as_ref()).unwrap();
    let newest = *versions.last().unwrap();
    victim
        .mark("inject", &[("scenario", "flipped_payload_byte")])
        .unwrap();
    let damaged = StorageScenario::FlippedPayloadByte
        .inject(victim.as_ref(), newest)
        .unwrap();
    println!("flipped a payload byte in {damaged} (tenant cg_team, v{newest})");
    let recovered = RecoveryManager::new(victim.clone(), RecoveryConfig::default())
        .recover_latest()
        .unwrap();
    println!(
        "cg_team recovered v{} ({} candidates scanned, rejected {:?})",
        recovered.version,
        recovered.report.scanned,
        recovered.report.rejected_versions()
    );

    // ---- Per-tenant accounting, then a graceful drain. ----
    for remote in &remotes {
        let stats = remote.stats().unwrap();
        println!(
            "  {:<24} {} versions, {} objects, {} bytes accepted",
            remote.label(),
            stats.versions,
            stats.objects,
            stats.accepted_bytes
        );
    }
    remotes[0].shutdown_daemon().unwrap();
    daemon.join().unwrap();
    println!("daemon drained; per-tenant history in {}", obs.display());
}
