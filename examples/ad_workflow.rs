//! The paper's Figure 1: reverse-mode AD on f = f(u(x), v(x)),
//! showing the tape and the chain-rule sweep.
//!
//! Run with: `cargo run --release -p scrutiny-bench --example ad_workflow`

use scrutiny_ad::{Adj, TapeSession};

fn main() {
    // Forward sweep: record the program. `a` is a constant, as in Fig. 1.
    let a = 3.0;
    let session = TapeSession::new();
    let x = Adj::leaf(2.0);
    let u = x * x; //       u(x) = x²
    let v = (x + 1.0).ln(); // v(x) = ln(x+1)
    let f = u * a + v; //   f(u, v) = a·u + v
    println!(
        "forward:  x = {}, u = {}, v = {:.6}, f = {:.6}",
        x.value(),
        u.value(),
        v.value(),
        f.value()
    );

    // Reverse sweep: adjoints flow from f back to x by the chain rule.
    let tape = session.finish();
    println!(
        "tape: {} nodes ({} leaves)",
        tape.stats().nodes,
        tape.stats().leaves
    );
    let grads = tape.gradient(f).unwrap();
    println!("reverse:  df/du = {a}, df/dv = 1");
    println!(
        "          du/dx = {}, dv/dx = {:.6}",
        2.0 * x.value(),
        1.0 / (x.value() + 1.0)
    );
    let expected = a * 2.0 * x.value() + 1.0 / (x.value() + 1.0);
    println!(
        "          df/dx = {:.6} (analytic {:.6})",
        grads.wrt(x),
        expected
    );
    assert!((grads.wrt(x) - expected).abs() < 1e-12);

    // The checkpoint connection: a leaf whose adjoint is zero is an
    // uncritical element.
    let session = TapeSession::new();
    let kept = Adj::leaf(1.0);
    let dropped = Adj::leaf(99.0); // written... never read again
    let out = kept * 2.0;
    let tape = session.finish();
    let g = tape.gradient(out).unwrap();
    println!(
        "\ncriticality: d out/d kept = {} (critical), d out/d dropped = {} (uncritical)",
        g.wrt(kept),
        g.wrt(dropped)
    );
}
