//! Wire-fault suite: a [`FaultProxy`] between a `RemoteBackend` and a
//! live `scrutinyd` damages the byte stream itself — torn response
//! frames, connections dropped mid-publish, garbage length prefixes —
//! and every fault must surface as a *typed* error on the client while
//! leaving both ends usable: the daemon keeps serving, and the same
//! engine's next epoch succeeds (the no-wedge contract: a broken
//! connection dies with its error; it is never returned to the pool).

use scrutiny_ckpt::names::{self, Tenant};
use scrutiny_ckpt::CkptError;
use scrutiny_ckpt::{VarData, VarPlan, VarRecord};
use scrutiny_engine::{
    EngineConfig, EngineError, EngineHandle, MemBackend, RecoveryConfig, RecoveryManager,
    StorageBackend,
};
use scrutiny_faultinj::{FaultProxy, NetFault};
use scrutinyd::{Daemon, DaemonConfig, Endpoint, RemoteBackend};
use std::sync::Arc;

/// A TCP daemon with a fault proxy in front of it; clients dial the
/// proxy.
fn rig(fault: NetFault) -> (Daemon, FaultProxy) {
    let pool = Arc::new(MemBackend::new());
    let daemon = Daemon::spawn_tcp("127.0.0.1:0", pool, DaemonConfig::default()).unwrap();
    let Endpoint::Tcp(addr) = daemon.endpoint() else {
        unreachable!("spawn_tcp yields a TCP endpoint")
    };
    let proxy = FaultProxy::spawn(addr, fault).unwrap();
    (daemon, proxy)
}

fn via(proxy: &FaultProxy) -> RemoteBackend {
    RemoteBackend::connect(
        Endpoint::Tcp(proxy.addr().to_string()),
        Some(Tenant::new("wire").unwrap()),
    )
    .unwrap()
}

fn vars(seed: f64) -> Vec<VarRecord> {
    vec![VarRecord::new(
        "u",
        VarData::F64((0..512).map(|i| seed + i as f64).collect()),
    )]
}

#[test]
fn truncated_response_is_a_typed_eof_then_the_backend_recovers() {
    let (daemon, proxy) = rig(NetFault::TruncateResponse { bytes: 2 });
    let remote = via(&proxy);
    remote.put(&names::data(0), &[7u8; 256]).unwrap();

    proxy.arm();
    let err = remote.get(&names::data(0)).unwrap_err();
    match err {
        CkptError::Io(e) => assert_eq!(
            e.kind(),
            std::io::ErrorKind::UnexpectedEof,
            "torn frame reads as EOF, got {e}"
        ),
        other => panic!("want Io(UnexpectedEof), got {other}"),
    }
    assert!(!proxy.is_armed(), "one-shot fault fired");

    // The broken connection was discarded, not pooled: the very next
    // operation dials fresh and succeeds against the same daemon.
    assert_eq!(remote.get(&names::data(0)).unwrap(), vec![7u8; 256]);
    drop(proxy);
    daemon.join().unwrap();
}

#[test]
fn garbage_length_prefix_is_refused_before_allocation() {
    let (daemon, proxy) = rig(NetFault::GarbageResponseLength);
    let remote = via(&proxy);
    remote.put(&names::data(0), &[1u8; 64]).unwrap();

    proxy.arm();
    let err = remote.get(&names::data(0)).unwrap_err();
    match err {
        CkptError::Io(e) => {
            assert_eq!(e.kind(), std::io::ErrorKind::InvalidData);
            assert!(
                e.to_string().contains("length prefix"),
                "error names the corrupt prefix: {e}"
            );
        }
        other => panic!("want Io(InvalidData), got {other}"),
    }

    // No wedge: fresh dial, clean read.
    assert_eq!(remote.get(&names::data(0)).unwrap(), vec![1u8; 64]);
    drop(proxy);
    daemon.join().unwrap();
}

#[test]
fn dropped_connection_mid_publish_fails_one_epoch_not_the_chain() {
    let (daemon, proxy) = rig(NetFault::DropMidRequest { bytes: 64 });
    let remote = Arc::new(via(&proxy));
    // One worker so the faulted epoch is the only in-flight submission.
    let engine = EngineHandle::open(
        remote.clone(),
        EngineConfig {
            workers: 1,
            ..Default::default()
        },
    )
    .unwrap();

    // Epoch 0 publishes cleanly through the disarmed proxy.
    let t = engine.submit(&vars(0.0), &[VarPlan::Full]).unwrap();
    engine.wait(t).unwrap();

    // Epoch 1 dies mid-flight: the proxy forwards 64 request bytes and
    // drops the connection. The failure is typed and scoped to the
    // ticket.
    proxy.arm();
    let t = engine.submit(&vars(1.0), &[VarPlan::Full]).unwrap();
    let err = engine.wait(t).unwrap_err();
    assert!(
        matches!(
            err,
            EngineError::Ckpt(CkptError::Io(_) | CkptError::Rejected(_))
        ),
        "want a typed wire error, got {err}"
    );
    assert!(!proxy.is_armed(), "fault consumed by the doomed epoch");

    // Epoch 2 goes through the same engine, same backend, untouched.
    let t = engine.submit(&vars(2.0), &[VarPlan::Full]).unwrap();
    engine.wait(t).unwrap();
    drop(engine);

    // Recovery over the wire lands on the newest *committed* version:
    // the torn epoch never half-published.
    let r = RecoveryManager::new(remote.clone(), RecoveryConfig::default())
        .recover_latest()
        .unwrap();
    assert_eq!(r.version, 2);
    assert!(
        !r.report.rejected_versions().contains(&0) && !r.report.rejected_versions().contains(&2),
        "intact versions stay accepted: {:?}",
        r.report.rejected_versions()
    );
    drop(proxy);
    daemon.join().unwrap();
}
