//! Adversarial non-smooth regression cases: the AD pitfalls catalogued by
//! Hückelheim et al. (PAPERS.md), each as a tiny `ScrutinyApp` with
//! hand-derived expected verdicts for *both* analyzers.
//!
//! Every case documents one divergence mode by name:
//!
//! * `max_loser` / `min_loser` — the losing operand of `rmax`/`rmin` gets
//!   a zero partial but a recorded edge: AD drops it, datadep keeps it.
//! * `tracked_zero_factor` — multiplying by a tracked zero value kills
//!   the adjoint, not the dependence.
//! * `exact_cancellation` — `x·y − y·x` style cancellation zeroes the
//!   adjoint along two live paths.
//! * `abs_kink` — `|x|` at exactly 0 records a zero partial at the kink.
//! * `branch_untaken_arm` — a primal-value branch is invisible to BOTH
//!   analyzers: the untaken arm records nothing and the steering value is
//!   read outside the tape. The test demonstrates the shared blind spot
//!   by corrupting the steering element and watching restart verification
//!   fail — the reason the paper freezes control flow and this repo pins
//!   integer control state as always-critical.
//!
//! In every divergent case the datadep verdict errs toward keeping data
//! (the safe direction), which `assert_safety_invariant` re-proves here
//! on tapes where the expected disagreement is known exactly.

use scrutiny_core::restart::restart_with_mutation;
use scrutiny_core::{
    checkpoint_restart_cycle, scrutinize, scrutinize_with, Analyzer, AppSpec, Bitmap, CkptSite,
    DisagreementKind, FillPolicy, Policy, Real, RestartConfig, RunOutcome, ScrutinyApp,
    ScrutinyOptions, VarData, VarRefMut, VarSpec,
};
use scrutiny_integration::{assert_safety_invariant, differential_case, explain};

/// Which pitfall dataflow the app records.
#[derive(Clone, Copy, Debug)]
enum Kind {
    MaxLoser,
    MinLoser,
    TrackedZeroFactor,
    ExactCancellation,
    AbsKink,
    BranchUntakenArm,
}

/// A single-variable app whose entire run is one pitfall-shaped
/// expression over the checkpointed elements.
struct Pitfall {
    kind: Kind,
}

impl Pitfall {
    fn init(&self) -> Vec<f64> {
        match self.kind {
            Kind::MaxLoser => vec![5.0, 2.0, 1.0],
            Kind::MinLoser => vec![5.0, 2.0],
            Kind::TrackedZeroFactor => vec![3.0, 0.0],
            Kind::ExactCancellation => vec![2.0, 3.0],
            Kind::AbsKink => vec![0.0, 1.0],
            Kind::BranchUntakenArm => vec![1.0, 2.0, 3.0],
        }
    }

    fn run_generic<R: Real>(&self, site: &mut dyn CkptSite<R>) -> RunOutcome<R> {
        let mut x: Vec<R> = self.init().iter().map(|&v| R::lit(v)).collect();
        site.at_boundary(0, &mut [VarRefMut::F64(&mut x)]);
        let output = match self.kind {
            // max(5, 2): x[1] loses — zero partial, recorded edge.
            Kind::MaxLoser => x[0].rmax(x[1]) * 2.0 + x[2],
            // min(5, 2): x[0] loses.
            Kind::MinLoser => x[0].rmin(x[1]) * 3.0 + 1.0,
            // ∂/∂x0 = x1 = 0: the dependence survives, the adjoint dies.
            Kind::TrackedZeroFactor => x[0] * x[1] + x[1],
            // ∂/∂x0 = x1 − x1 = 0 exactly, along two live paths.
            Kind::ExactCancellation => x[0] * x[1] - x[1] * x[0] + x[1],
            // |x| at the kink records partial 0.
            Kind::AbsKink => x[0].abs() + x[1],
            // The branch reads a primal value: nothing of x[0] is on the
            // tape, and the untaken arm (x[2]) records nothing at all.
            Kind::BranchUntakenArm => {
                if x[0].value() > 0.0 {
                    x[1] * 2.0
                } else {
                    x[2] * 3.0
                }
            }
        };
        RunOutcome { output }
    }
}

impl ScrutinyApp for Pitfall {
    fn spec(&self) -> AppSpec {
        AppSpec {
            name: format!("{:?}", self.kind).to_uppercase(),
            class: "pitfall".into(),
            vars: vec![VarSpec::f64("x", &[self.init().len()])],
        }
    }

    fn checkpoint_iter(&self) -> usize {
        0
    }

    fn run_f64(&self, site: &mut dyn CkptSite<f64>) -> RunOutcome<f64> {
        self.run_generic(site)
    }

    fn run_ad(
        &self,
        site: &mut dyn CkptSite<scrutiny_core::Adj>,
    ) -> RunOutcome<scrutiny_core::Adj> {
        self.run_generic(site)
    }
}

fn bits(map: &Bitmap) -> Vec<bool> {
    map.iter().collect()
}

/// Run the differential analysis and check both analyzers' per-element
/// verdicts against the hand-derived tables, plus the typed disagreement.
fn check_case(kind: Kind, ad_expect: &[bool], dd_expect: &[bool], disagree_elems: &[usize]) {
    let app = Pitfall { kind };
    let case = differential_case(&app, &ScrutinyOptions::default()).unwrap();
    assert_safety_invariant(&case);
    let rep = &case.report;
    assert_eq!(
        bits(&rep.ad.vars[0].value_map),
        ad_expect,
        "{kind:?}: AD verdict\n{}",
        explain(rep)
    );
    assert_eq!(
        bits(&rep.datadep.vars[0].value_map),
        dd_expect,
        "{kind:?}: datadep verdict\n{}",
        explain(rep)
    );
    if disagree_elems.is_empty() {
        assert!(rep.disagreements.is_empty(), "{kind:?}\n{}", explain(rep));
    } else {
        assert_eq!(rep.disagreements.len(), 1, "{kind:?}\n{}", explain(rep));
        let d = &rep.disagreements[0];
        assert_eq!(d.kind, DisagreementKind::ValueDeadStructurallyLive);
        assert_eq!(d.var, "x");
        assert_eq!(d.elems, disagree_elems, "{kind:?}");
        let w = d.witness.as_ref().expect("over-approximation has a path");
        assert!(w.hops >= 1, "{kind:?}: witness reaches the output");
    }
}

#[test]
fn max_loser_value_dead_structurally_live() {
    // out = max(x0, x1)·2 + x2 with x0 = 5 > x1 = 2: the loser x1 has a
    // recorded edge with partial 0. AD prunes it; datadep keeps it.
    check_case(
        Kind::MaxLoser,
        &[true, false, true],
        &[true, true, true],
        &[1],
    );
}

#[test]
fn min_loser_value_dead_structurally_live() {
    // out = min(x0, x1)·3 + 1 with x1 = 2 winning: x0 is the loser.
    check_case(Kind::MinLoser, &[false, true], &[true, true], &[0]);
}

#[test]
fn tracked_zero_factor_kills_adjoint_not_dependence() {
    // out = x0·x1 + x1 with x1 = 0: ∂out/∂x0 = 0 although x0 flows in.
    // At *this* state the AD verdict is right (garbage in x0 is erased by
    // the zero multiply); datadep refuses to bet on the value staying 0.
    check_case(Kind::TrackedZeroFactor, &[false, true], &[true, true], &[0]);
}

#[test]
fn exact_cancellation_zeroes_both_paths() {
    // out = x0·x1 − x1·x0 + x1: two live paths whose adjoints cancel to
    // exactly 0.0 in IEEE arithmetic.
    check_case(Kind::ExactCancellation, &[false, true], &[true, true], &[0]);
}

#[test]
fn abs_kink_at_zero_records_zero_partial() {
    // out = |x0| + x1 at x0 = 0: the subgradient convention records
    // partial 0 at the kink, so AD calls the element uncritical even
    // though any perturbation changes the output — the sharpest of the
    // non-smooth pitfalls. The static analyzer keeps it.
    check_case(Kind::AbsKink, &[false, true], &[true, true], &[0]);
}

#[test]
fn branch_untaken_arm_is_invisible_to_both_analyzers() {
    // Control flow is the shared blind spot: x0 only steers the branch
    // (read as a primal value, never recorded) and x2 lives in the arm
    // that never executes. BOTH analyzers agree both are uncritical —
    // there is no disagreement for the harness to flag.
    check_case(
        Kind::BranchUntakenArm,
        &[false, true, false],
        &[false, true, false],
        &[],
    );
}

#[test]
fn branch_blind_spot_breaks_restart_when_steering_value_is_corrupted() {
    // ...and the blind spot is real: corrupt the branch-steering element
    // in an otherwise-full checkpoint and the restarted run takes the
    // other arm (golden 2·2 = 4 vs restarted 3·3 = 9). This is why the
    // paper freezes control flow during scrutiny and why integer control
    // state is pinned always-critical; for float steering values like
    // this one, neither analyzer can save the restart.
    let app = Pitfall {
        kind: Kind::BranchUntakenArm,
    };
    let analysis = scrutinize(&app).unwrap();
    let cfg = RestartConfig {
        policy: Policy::Full,
        fill: FillPolicy::Garbage(7),
        store_dir: None,
    };
    let report = restart_with_mutation(&app, &analysis, &cfg, |bufs, _| match &mut bufs[0] {
        VarData::F64(v) => v[0] = -1.0,
        _ => unreachable!("single f64 variable"),
    })
    .unwrap();
    assert!(!report.verified, "branch flip must break verification");
    assert_eq!(report.golden, 4.0);
    assert_eq!(report.restarted, 9.0);
}

#[test]
fn datadep_plan_checkpoints_the_loser_and_still_restarts() {
    // A checkpoint planned from the datadep verdict stores the max-loser
    // element the AD plan would prune. Garbage-filled restarts verify
    // either way — the over-approximation costs bytes, never correctness.
    let app = Pitfall {
        kind: Kind::MaxLoser,
    };
    let dd = scrutinize_with(
        &app,
        &ScrutinyOptions {
            analyzer: Analyzer::DataDep,
            ..ScrutinyOptions::default()
        },
    )
    .unwrap();
    let cfg = RestartConfig {
        policy: Policy::PrunedValue,
        fill: FillPolicy::Garbage(99),
        store_dir: None,
    };
    let report = checkpoint_restart_cycle(&app, &dd, &cfg).unwrap();
    assert!(report.verified);
    // All three elements are datadep-live, so nothing was pruned here;
    // the AD plan would have dropped the loser.
    assert_eq!(dd.total_uncritical(), 0);
    let ad = scrutinize(&app).unwrap();
    assert_eq!(ad.total_uncritical(), 1);
    let ad_report = checkpoint_restart_cycle(&app, &ad, &cfg).unwrap();
    assert!(ad_report.verified);
    // The AD plan prunes the loser's payload; at this tiny scale the
    // pruned region table can outweigh the 8 bytes saved, so compare
    // payload (the quantity the verdict controls), not file totals.
    assert!(ad_report.storage.payload_bytes < report.storage.payload_bytes);
}
