//! Full pipeline (analyze → plan → checkpoint → restart → verify) for
//! every AD-analyzable NPB benchmark at reduced scale.

use scrutiny_core::{
    checkpoint_restart_cycle, scrutinize, FillPolicy, Policy, RestartConfig, ScrutinyApp,
};
use scrutiny_npb::{Bt, Cg, Ep, Ft, Lu, Mg, Sp};

fn minis() -> Vec<Box<dyn ScrutinyApp>> {
    vec![
        Box::new(Bt::mini()),
        Box::new(Sp::mini()),
        Box::new(Lu::mini()),
        Box::new(Mg::mini()),
        Box::new(Cg::mini()),
        Box::new(Ft::mini()),
        Box::new(Ep::mini()),
    ]
}

#[test]
fn every_benchmark_restarts_from_pruned_checkpoint() {
    for app in minis() {
        let analysis = scrutinize(app.as_ref()).unwrap();
        let cfg = RestartConfig {
            policy: Policy::PrunedValue,
            fill: FillPolicy::Garbage(1),
            store_dir: None,
        };
        let report = checkpoint_restart_cycle(app.as_ref(), &analysis, &cfg).unwrap();
        assert!(
            report.verified,
            "{} failed to verify after restart (rel err {})",
            analysis.app.name, report.rel_err
        );
    }
}

#[test]
fn structural_policy_also_restarts() {
    for app in minis() {
        let analysis = scrutinize(app.as_ref()).unwrap();
        let cfg = RestartConfig {
            policy: Policy::PrunedStructural,
            fill: FillPolicy::Sentinel(1e20),
            store_dir: None,
        };
        let report = checkpoint_restart_cycle(app.as_ref(), &analysis, &cfg).unwrap();
        assert!(report.verified, "{}", analysis.app.name);
    }
}

#[test]
fn pruned_is_never_larger_in_payload() {
    for app in minis() {
        let analysis = scrutinize(app.as_ref()).unwrap();
        let cfg = RestartConfig::default();
        let report = checkpoint_restart_cycle(app.as_ref(), &analysis, &cfg).unwrap();
        assert!(
            report.storage.payload_bytes <= report.full_storage.payload_bytes,
            "{}",
            analysis.app.name
        );
    }
}

#[test]
fn uninterrupted_equals_restarted_bit_exactly_for_full_policy() {
    for app in minis() {
        let analysis = scrutinize(app.as_ref()).unwrap();
        let cfg = RestartConfig {
            policy: Policy::Full,
            ..Default::default()
        };
        let report = checkpoint_restart_cycle(app.as_ref(), &analysis, &cfg).unwrap();
        assert_eq!(report.abs_err, 0.0, "{}", analysis.app.name);
    }
}
