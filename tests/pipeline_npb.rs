//! Full pipeline (analyze → plan → checkpoint → restart → verify) for
//! every AD-analyzable NPB benchmark at reduced scale.

use scrutiny_core::{
    checkpoint_restart_cycle, scrutinize, EngineConfig, EngineHandle, FillPolicy, MemBackend,
    Policy, RestartConfig, ScrutinyApp,
};
use scrutiny_npb::{burn_in_bounded, Bt, Cg, Ep, Ft, Lu, Mg, Sp};
use std::sync::Arc;

fn minis() -> Vec<Box<dyn ScrutinyApp>> {
    vec![
        Box::new(Bt::mini()),
        Box::new(Sp::mini()),
        Box::new(Lu::mini()),
        Box::new(Mg::mini()),
        Box::new(Cg::mini()),
        Box::new(Ft::mini()),
        Box::new(Ep::mini()),
    ]
}

#[test]
fn every_benchmark_restarts_from_pruned_checkpoint() {
    for app in minis() {
        let analysis = scrutinize(app.as_ref()).unwrap();
        let cfg = RestartConfig {
            policy: Policy::PrunedValue,
            fill: FillPolicy::Garbage(1),
            store_dir: None,
        };
        let report = checkpoint_restart_cycle(app.as_ref(), &analysis, &cfg).unwrap();
        assert!(
            report.verified,
            "{} failed to verify after restart (rel err {})",
            analysis.app.name, report.rel_err
        );
    }
}

#[test]
fn structural_policy_also_restarts() {
    for app in minis() {
        let analysis = scrutinize(app.as_ref()).unwrap();
        let cfg = RestartConfig {
            policy: Policy::PrunedStructural,
            fill: FillPolicy::Sentinel(1e20),
            store_dir: None,
        };
        let report = checkpoint_restart_cycle(app.as_ref(), &analysis, &cfg).unwrap();
        assert!(report.verified, "{}", analysis.app.name);
    }
}

#[test]
fn pruned_is_never_larger_in_payload() {
    for app in minis() {
        let analysis = scrutinize(app.as_ref()).unwrap();
        let cfg = RestartConfig::default();
        let report = checkpoint_restart_cycle(app.as_ref(), &analysis, &cfg).unwrap();
        assert!(
            report.storage.payload_bytes <= report.full_storage.payload_bytes,
            "{}",
            analysis.app.name
        );
    }
}

#[test]
fn forced_eviction_burn_in_is_bit_identical_to_unbounded() {
    // The ISSUE's acceptance bar: a burn-in whose analysis tape budget is
    // less than a tenth of the unbounded recording — so the sweeps MUST
    // evict and replay — still produces a bit-identical analysis and a
    // verifying multi-epoch restart. CG mini records ~10^5 nodes; two
    // resident segments of 256 nodes is a ~16 KiB budget against a
    // multi-megabyte recording.
    let app = Cg::mini();
    let engine = EngineHandle::open(Arc::new(MemBackend::new()), EngineConfig::default()).unwrap();
    let report = burn_in_bounded(&app, &engine, 3, Policy::PrunedValue, 256, 2).unwrap();
    assert!(report.bit_identical);
    assert!(
        report.budget_bytes * 10 < report.unbounded_tape_bytes,
        "budget ({}) must be under a tenth of the recording ({})",
        report.budget_bytes,
        report.unbounded_tape_bytes
    );
    assert!(
        report.peak_resident_bytes <= report.budget_bytes,
        "peak residency ({}) exceeded the budget ({})",
        report.peak_resident_bytes,
        report.budget_bytes
    );
    assert!(report.replayed_segments > 0, "eviction must force replays");
    assert!(
        report.burn_in.verified,
        "restart from bounded-analysis maps failed (rel err {})",
        report.burn_in.rel_err
    );
}

#[test]
fn uninterrupted_equals_restarted_bit_exactly_for_full_policy() {
    for app in minis() {
        let analysis = scrutinize(app.as_ref()).unwrap();
        let cfg = RestartConfig {
            policy: Policy::Full,
            ..Default::default()
        };
        let report = checkpoint_restart_cycle(app.as_ref(), &analysis, &cfg).unwrap();
        assert_eq!(report.abs_err, 0.0, "{}", analysis.app.name);
    }
}
