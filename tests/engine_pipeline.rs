//! End-to-end async pipeline: NPB apps checkpointing through the engine
//! (every backend and layout), with restart verification consuming the
//! engine-written checkpoints through the standard reader path.

use scrutiny_core::{
    checkpoint_restart_cycle, checkpoint_restart_cycle_async, scrutinize, DirBackend, EngineConfig,
    EngineHandle, Layout, MemBackend, Policy, RestartConfig, ShardedBackend, StorageBackend,
};
use scrutiny_npb::{burn_in, burn_in_suite_mini, Bt};
use std::sync::Arc;

fn tmp(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("scrutiny_engpipe_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn burn_in_wired_npb_apps_verify_through_every_backend() {
    let dir = tmp("burnin");
    for app in burn_in_suite_mini() {
        let analysis = scrutinize(app.as_ref()).unwrap();
        let name = analysis.app.name.clone();
        let backends: Vec<(Arc<dyn StorageBackend>, Layout)> = vec![
            (Arc::new(MemBackend::new()), Layout::Monolithic),
            (
                Arc::new(DirBackend::open(dir.join(&name)).unwrap()),
                Layout::Sharded,
            ),
            (
                Arc::new(
                    ShardedBackend::new(vec![
                        Arc::new(MemBackend::new()) as Arc<dyn StorageBackend>,
                        Arc::new(DirBackend::open(dir.join(format!("{name}_stripe"))).unwrap()),
                    ])
                    .unwrap(),
                ),
                Layout::Sharded,
            ),
        ];
        for (backend, layout) in backends {
            let label = backend.label();
            let engine = EngineHandle::open(
                backend,
                EngineConfig {
                    layout,
                    keep: Some(3),
                    ..Default::default()
                },
            )
            .unwrap();
            let report = burn_in(app.as_ref(), &analysis, &engine, 3, Policy::PrunedValue)
                .expect("burn-in must not error");
            assert!(
                report.verified,
                "{name} via {label}: restart failed (rel err {})",
                report.rel_err
            );
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn async_and_blocking_cycles_agree_on_bt() {
    let app = Bt::mini();
    let analysis = scrutinize(&app).unwrap();
    let cfg = RestartConfig::default();
    let blocking = checkpoint_restart_cycle(&app, &analysis, &cfg).unwrap();
    let engine = EngineHandle::open(Arc::new(MemBackend::new()), EngineConfig::default()).unwrap();
    let asynced = checkpoint_restart_cycle_async(&app, &analysis, &cfg, &engine).unwrap();
    assert!(asynced.verified);
    assert_eq!(
        asynced.storage, blocking.storage,
        "async pipeline must store exactly the blocking writer's bytes"
    );
    assert_eq!(asynced.restarted, blocking.restarted);
}
