//! Compression-block invariants (`scrutiny_ckpt::compress`): the
//! properties the `SCRUTCZB` container and the tiered v2 data format
//! must hold for the at-rest codec to be safe to enable.
//!
//! * **Default-off bit-identity** — with the default codec every byte
//!   stream is identical to what the pre-compression writer produced.
//! * **Container roundtrip** — `decompress(compress(x)) == x` for every
//!   at-rest method over adversarial byte patterns.
//! * **Restore equivalence** — an engine publishing with `AtRest::Auto`
//!   restores bit-identically to one publishing raw, in every layout
//!   (monolithic, sharded, delta) and at every reader thread count.
//! * **CRC equivalence** — the vectorized slice-by-8 CRC equals the
//!   byte-at-a-time reference on random buffers at every alignment.
//! * **§IV.C with lossy tiers** — every NPB mini passes the paper's
//!   restart verification under `Policy::TieredCompressed`, with a
//!   checkpoint measurably smaller than prune-only.
//!
//! CI runs this suite in release: the property cases serialize full NPB
//! states repeatedly, which is needlessly slow unoptimized.

use proptest::prelude::*;
use scrutiny_ckpt::compress::{compress, decompress, is_container, maybe_decompress};
use scrutiny_ckpt::format::{crc32, crc32_scalar};
use scrutiny_ckpt::writer::{serialize, serialize_with};
use scrutiny_ckpt::{AtRest, CodecConfig, DeltaPolicy, LoCodec, RestoreOptions};
use scrutiny_core::restart::{capture_state, checkpoint_restart_cycle};
use scrutiny_core::{plan::plans_for, scrutinize, Policy, RestartConfig, ScrutinyApp};
use scrutiny_engine::{
    read_version, EngineConfig, EngineHandle, Layout, MemBackend, StorageBackend,
};
use scrutiny_npb::{perturb_localized, Bt, Cg, Ep, Ft, Lu, Mg, Sp};
use std::sync::Arc;

fn minis() -> Vec<Box<dyn ScrutinyApp>> {
    vec![
        Box::new(Bt::mini()),
        Box::new(Sp::mini()),
        Box::new(Lu::mini()),
        Box::new(Mg::mini()),
        Box::new(Cg::mini()),
        Box::new(Ft::mini()),
        Box::new(Ep::mini()),
    ]
}

/// With the default codec (`AtRest::None`, `LoCodec::F32`) the tiered
/// writer emits byte-for-byte what the plain writer always emitted —
/// enabling the feature cannot disturb a single existing stream.
#[test]
fn default_codec_leaves_every_byte_stream_identical() {
    for app in minis() {
        let analysis = scrutinize(app.as_ref()).unwrap();
        let vars = capture_state(app.as_ref());
        for policy in [Policy::PrunedValue, Policy::Tiered { hi_threshold: 1e-3 }] {
            let plans = plans_for(&analysis, policy);
            let plain = serialize(&vars, &plans).unwrap();
            let tiered = serialize_with(&vars, &plans, LoCodec::F32).unwrap();
            assert_eq!(plain.data, tiered.data, "{} {policy:?}", app.spec().name);
            assert_eq!(plain.aux, tiered.aux, "{} {policy:?}", app.spec().name);
        }
    }
}

/// Every NPB mini passes the paper's §IV.C restart verification with the
/// lossy tier enabled (`keep = 6`: relative error bound 2⁻³⁶, well
/// inside every app's tolerance), and the lossy checkpoints are
/// measurably smaller than prune-only — the tentpole's acceptance bar.
/// Per app the lossy payload never exceeds the pruned one (an app whose
/// state is entirely hi-tier at this threshold ties); across the suite
/// the total must strictly shrink.
#[test]
fn tiered_compressed_verifies_every_npb_mini_and_shrinks() {
    let (mut lossy_total, mut pruned_total) = (0usize, 0usize);
    for app in minis() {
        let name = app.spec().name;
        let analysis = scrutinize(app.as_ref()).unwrap();
        let pruned = checkpoint_restart_cycle(
            app.as_ref(),
            &analysis,
            &RestartConfig {
                policy: Policy::PrunedValue,
                ..Default::default()
            },
        )
        .unwrap();
        let lossy = checkpoint_restart_cycle(
            app.as_ref(),
            &analysis,
            &RestartConfig {
                policy: Policy::TieredCompressed {
                    hi_threshold: 1e-3,
                    keep: 6,
                },
                ..Default::default()
            },
        )
        .unwrap();
        assert!(
            lossy.verified,
            "{name}: rel err {} exceeds tolerance",
            lossy.rel_err
        );
        assert!(
            lossy.storage.payload_bytes <= pruned.storage.payload_bytes,
            "{name}: lossy {} B > pruned {} B",
            lossy.storage.payload_bytes,
            pruned.storage.payload_bytes
        );
        lossy_total += lossy.storage.payload_bytes;
        pruned_total += pruned.storage.payload_bytes;
    }
    assert!(
        lossy_total < pruned_total,
        "suite-wide: lossy {lossy_total} B !< pruned {pruned_total} B"
    );
}

/// One engine per layout, published with `AtRest::Auto`, must restore
/// bit-identically to a raw-publishing engine — through `read_version`
/// (the serial reader) and the parallel pipeline at 1, 2, and 4 threads.
#[test]
fn compressed_engines_restore_bit_identically_in_every_layout() {
    let app = Ft::mini();
    let analysis = scrutinize(&app).unwrap();
    let base_vars = capture_state(&app);
    let plans = plans_for(&analysis, Policy::PrunedValue);
    let auto = CodecConfig {
        at_rest: AtRest::Auto,
        ..Default::default()
    };

    let configs: [(&str, EngineConfig); 3] = [
        ("monolithic", EngineConfig::default()),
        (
            "sharded",
            EngineConfig {
                layout: Layout::Sharded,
                target_shards: 4,
                ..Default::default()
            },
        ),
        (
            "delta",
            EngineConfig {
                delta: Some(DeltaPolicy::default()),
                ..Default::default()
            },
        ),
    ];
    for (label, cfg) in configs {
        let mut backends = Vec::new();
        for codec in [CodecConfig::default(), auto] {
            // Same epoch history for both engines: identical state in,
            // so any byte difference out is the codec's fault.
            let mut vars = base_vars.clone();
            let mem = Arc::new(MemBackend::new());
            let engine = EngineHandle::open(
                mem.clone(),
                EngineConfig {
                    codec,
                    ..cfg.clone()
                },
            )
            .unwrap();
            for epoch in 0..3usize {
                if epoch > 0 {
                    perturb_localized(&mut vars, epoch);
                }
                let t = engine.submit(&vars, &plans).unwrap();
                engine.wait(t).unwrap();
            }
            backends.push(mem);
        }
        let (raw, zip) = (&backends[0], &backends[1]);
        for version in 0..3u64 {
            let want = read_version(raw.as_ref(), version).unwrap();
            let got = read_version(zip.as_ref(), version).unwrap();
            assert_eq!(want, got, "{label} v{version} serial");
            for threads in [1usize, 2, 4] {
                let fetch = |name: &str| zip.get(name);
                let (image, _) = scrutiny_ckpt::read_data_image_parallel(
                    version,
                    &fetch,
                    &RestoreOptions { threads },
                )
                .unwrap();
                assert_eq!(want.0, image, "{label} v{version} parallel x{threads}");
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `decompress(compress(x, method)) == x` for every at-rest method,
    /// over inputs spanning the codecs' best and worst cases: runs,
    /// periodic structure (bit-plane-friendly), and incompressible
    /// noise. `Auto`'s pick must never exceed stored-form size + header.
    #[test]
    fn container_roundtrips_every_method(
        seed in 0u64..1_000_000,
        len in 0usize..4096,
        kind in 0u8..3,
    ) {
        let mut z = seed;
        let mut next = move || {
            z = z.wrapping_add(0x9E3779B97F4A7C15);
            let mut x = z;
            x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
            x ^ (x >> 31)
        };
        let raw: Vec<u8> = match kind {
            0 => (0..len).map(|i| if (i / 97) % 2 == 0 { 0 } else { 0xAB }).collect(),
            1 => (0..len).map(|i| ((i % 8) * 16) as u8 | ((i / 64) as u8 & 0x0F)).collect(),
            _ => (0..len).map(|_| next() as u8).collect(),
        };
        for at_rest in [AtRest::Rle, AtRest::BitPlane, AtRest::Auto] {
            let stored = compress(&raw, at_rest);
            prop_assert!(is_container(&stored));
            prop_assert!(!is_container(&raw) || raw.len() >= 8);
            prop_assert_eq!(&decompress(&stored).unwrap(), &raw);
            prop_assert_eq!(&maybe_decompress(stored.clone()).unwrap(), &raw);
            if at_rest == AtRest::Auto {
                // Auto never does worse than the stored fallback.
                prop_assert!(stored.len() <= raw.len() + 25 + 4);
            }
        }
    }

    /// The vectorized slice-by-8 CRC equals the byte-at-a-time reference
    /// on random buffers, including every sub-word alignment and length
    /// remainder around the 8-byte stride.
    #[test]
    fn sliced_crc_equals_scalar(
        seed in 0u64..1_000_000,
        len in 0usize..2048,
        offset in 0usize..8,
    ) {
        let mut z = seed;
        let buf: Vec<u8> = (0..len + offset).map(|_| {
            z = z.wrapping_add(0x9E3779B97F4A7C15);
            (z ^ (z >> 31)) as u8
        }).collect();
        let view = &buf[offset.min(buf.len())..];
        prop_assert_eq!(crc32(view), crc32_scalar(view));
    }
}
