//! Acceptance test for the segmented-tape refactor: on real NPB kernel
//! recordings (CG and FT at minimum), the parallel reverse sweeps produce
//! **bit-identical** gradients and reachability to the serial seed sweep,
//! and the whole-pipeline criticality maps are unchanged by segmentation.
//!
//! CI runs this in release next to the engine stress suite: frontier-merge
//! ordering races would hide behind debug-mode timing otherwise.

use scrutiny_ad::{Adj, SweepConfig, Tape, TapeCheckpointConfig, TapeConfig, TapeSession};
use scrutiny_core::{scrutinize, scrutinize_with, LeafSite, ScrutinyApp, ScrutinyOptions};
use scrutiny_npb::{Bt, Cg, Ft};

/// Record one AD run of `app` through the checkpoint boundary, the way
/// `scrutinize` does, on a tape with the given segment length.
fn record(app: &dyn ScrutinyApp, segment_len: usize) -> (Adj, Tape) {
    record_with(app, segment_len, None)
}

/// [`record`] with an optional tape residency budget.
fn record_with(
    app: &dyn ScrutinyApp,
    segment_len: usize,
    checkpoint: Option<TapeCheckpointConfig>,
) -> (Adj, Tape) {
    let session = TapeSession::with_config(TapeConfig {
        capacity: app.tape_capacity_hint(),
        segment_len,
        checkpoint,
        ..TapeConfig::default()
    });
    let mut site = LeafSite::new();
    let out = app.run_ad(&mut site);
    (out.output, session.finish())
}

fn check_kernel(app: &dyn ScrutinyApp) {
    let (out, tape) = record(app, 1 << 12);
    assert!(
        tape.segment_count() > 1,
        "{}: tape too small to exercise segmentation",
        app.spec().name
    );
    let (serial, sstats) = tape.gradient_sweep(out, SweepConfig::serial()).unwrap();
    let (reach_serial, _) = tape.reachable_sweep(out, SweepConfig::serial()).unwrap();
    assert!(!sstats.parallel);
    for threads in [2usize, 4] {
        let cfg = SweepConfig::with_threads(threads);
        let (par, pstats) = tape.gradient_sweep(out, cfg).unwrap();
        assert!(
            pstats.parallel,
            "{}: sweep did not parallelize",
            app.spec().name
        );
        assert_eq!(pstats.threads, threads);
        assert_eq!(serial.len(), par.len());
        for i in 0..serial.len() {
            assert_eq!(
                serial.of_node(i as u64).to_bits(),
                par.of_node(i as u64).to_bits(),
                "{}: gradient of node {i} diverged with {threads} threads",
                app.spec().name
            );
        }
        let (reach_par, _) = tape.reachable_sweep(out, cfg).unwrap();
        assert_eq!(
            reach_serial,
            reach_par,
            "{}: reachability diverged with {threads} threads",
            app.spec().name
        );
    }
}

#[test]
fn cg_parallel_sweep_bit_identical_to_serial() {
    check_kernel(&Cg::mini());
}

#[test]
fn ft_parallel_sweep_bit_identical_to_serial() {
    check_kernel(&Ft::mini());
}

#[test]
fn bt_parallel_sweep_bit_identical_to_serial() {
    check_kernel(&Bt::mini());
}

/// The bounded-memory matrix: for each residency budget — one segment,
/// two segments, the auto ⌈log2⌉ policy, and "everything fits" — and
/// each sweep-thread count, the checkpointed tape's value gradients,
/// reachability, and datadep liveness must be bit-identical to the
/// unbounded recording of the same run, and the datadep analyzer must
/// still agree with the structural sweep under replay.
fn check_checkpointed(app: &dyn ScrutinyApp) {
    const SEG: usize = 1 << 12;
    let name = app.spec().name;
    let (out, full) = record(app, SEG);
    let segments = full.segment_count();
    assert!(segments > 1, "{name}: tape too small to exercise eviction");
    let (base_grads, _) = full.gradient_sweep(out, SweepConfig::serial()).unwrap();
    let (base_reach, _) = full.reachable_sweep(out, SweepConfig::serial()).unwrap();
    let replay = || {
        let mut site = LeafSite::new();
        let _ = app.run_ad(&mut site);
    };
    let budgets = [
        TapeCheckpointConfig::with_ncheckpoints(1),
        TapeCheckpointConfig::with_ncheckpoints(2),
        TapeCheckpointConfig::auto(),
        TapeCheckpointConfig::with_ncheckpoints(segments),
    ];
    for ckpt in budgets {
        let n = ckpt.ncheckpoints;
        let (out_b, bounded) = record_with(app, SEG, Some(ckpt));
        assert_eq!(
            out_b.index(),
            out.index(),
            "{name}: checkpointed recording drifted (ncheckpoints={n})"
        );
        let budget = ckpt.budget_bytes(SEG, segments);
        for threads in [1usize, 2, 4] {
            let cfg = if threads == 1 {
                SweepConfig::serial()
            } else {
                SweepConfig::with_threads(threads)
            };
            let (grads, gstats) = bounded.gradient_sweep_replay(out_b, cfg, &replay).unwrap();
            assert!(
                gstats.peak_resident_bytes <= budget,
                "{name}: value sweep peak {} over budget {budget} \
                 (ncheckpoints={n}, threads={threads})",
                gstats.peak_resident_bytes
            );
            for i in 0..base_grads.len() {
                assert_eq!(
                    base_grads.of_node(i as u64).to_bits(),
                    grads.of_node(i as u64).to_bits(),
                    "{name}: gradient of node {i} diverged under replay \
                     (ncheckpoints={n}, threads={threads})"
                );
            }
            let (reach, _) = bounded.reachable_sweep_replay(out_b, cfg, &replay).unwrap();
            assert_eq!(
                base_reach, reach,
                "{name}: reachability diverged under replay \
                 (ncheckpoints={n}, threads={threads})"
            );
            let dd = bounded.datadep_sweep_replay(out_b, cfg, &replay).unwrap();
            assert_eq!(
                dd.live_bits(),
                &reach[..],
                "{name}: datadep must agree with the structural sweep under \
                 replay (ncheckpoints={n}, threads={threads})"
            );
        }
        if n <= 2 {
            assert!(
                bounded.stats().replayed_segments > 0,
                "{name}: a {n}-segment budget over {segments} segments must \
                 have forced replays"
            );
        }
    }
}

// The matrix re-records the whole app once per evicted window — tens of
// full AD re-runs per sweep at the one-segment budget. CI runs these in
// release (where the matrix takes seconds per app); under a debug build
// they are ignored, like the rest of this suite's raison d'être says:
// debug-mode timing is not what these tests exist to check.
#[cfg_attr(debug_assertions, ignore = "replay matrix runs in release CI")]
#[test]
fn cg_checkpointed_sweeps_bit_identical_across_budgets_and_threads() {
    check_checkpointed(&Cg::mini());
}

#[cfg_attr(debug_assertions, ignore = "replay matrix runs in release CI")]
#[test]
fn ft_checkpointed_sweeps_bit_identical_across_budgets_and_threads() {
    check_checkpointed(&Ft::mini());
}

#[cfg_attr(debug_assertions, ignore = "replay matrix runs in release CI")]
#[test]
fn bt_checkpointed_sweeps_bit_identical_across_budgets_and_threads() {
    check_checkpointed(&Bt::mini());
}

/// End-to-end: the criticality maps and gradient magnitudes the storage
/// planner consumes are bit-identical whether the analysis ran serial on
/// a monolithic tape or parallel on a finely segmented one.
#[test]
fn scrutinize_maps_unchanged_by_segmentation_cg_ft() {
    let apps: [Box<dyn ScrutinyApp>; 2] = [Box::new(Cg::mini()), Box::new(Ft::mini())];
    for app in apps {
        let base = scrutinize(app.as_ref()).unwrap();
        let seg = scrutinize_with(
            app.as_ref(),
            &ScrutinyOptions {
                segment_len: 4096,
                threads: 4,
                ..ScrutinyOptions::default()
            },
        )
        .unwrap();
        assert!(seg.tape_stats.segments > 1);
        assert!(seg.sweep.parallel);
        assert_eq!(base.vars.len(), seg.vars.len());
        for (a, b) in base.vars.iter().zip(&seg.vars) {
            assert_eq!(a.value_map, b.value_map, "{}: value map", a.spec.name);
            assert_eq!(
                a.structural_map, b.structural_map,
                "{}: structural map",
                a.spec.name
            );
            for (ga, gb) in a.grad_mag.iter().zip(&b.grad_mag) {
                assert_eq!(
                    ga.to_bits(),
                    gb.to_bits(),
                    "{}: grad magnitude",
                    a.spec.name
                );
            }
        }
    }
}
