//! End-to-end gradient validation: the reverse-mode derivative of each
//! benchmark's output with respect to a checkpointed element must match
//! central finite differences computed through the *restart* machinery —
//! the strongest cross-check of analysis + capture + restore together.

use scrutiny_core::restart::restart_with_mutation;
use scrutiny_core::{scrutinize, FillPolicy, Policy, RestartConfig, ScrutinyApp, VarData};
use scrutiny_npb::{Bt, Cg};

/// Output after perturbing element `idx` of float variable `var_i` by `d`.
fn perturbed_output(
    app: &dyn ScrutinyApp,
    analysis: &scrutiny_core::AnalysisReport,
    var_i: usize,
    idx: usize,
    d: f64,
) -> f64 {
    let cfg = RestartConfig {
        policy: Policy::Full,
        fill: FillPolicy::Zero,
        store_dir: None,
    };
    let report = restart_with_mutation(app, analysis, &cfg, |bufs, _| {
        if let VarData::F64(v) = &mut bufs[var_i] {
            v[idx] += d;
        }
    })
    .unwrap();
    report.restarted
}

fn check_gradients(app: &dyn ScrutinyApp, var_i: usize, indices: &[usize], tol: f64) {
    let analysis = scrutinize(app).unwrap();
    let crit = &analysis.vars[var_i];
    for &idx in indices {
        let g = crit.grad_mag[idx];
        let h = 1e-5;
        let plus = perturbed_output(app, &analysis, var_i, idx, h);
        let minus = perturbed_output(app, &analysis, var_i, idx, -h);
        let fd = ((plus - minus) / (2.0 * h)).abs();
        let denom = fd.abs().max(g).max(1e-12);
        assert!(
            (fd - g).abs() / denom < tol,
            "{}[{}][{}]: reverse {g:.6e} vs finite difference {fd:.6e}",
            analysis.app.name,
            crit.spec.name,
            idx
        );
    }
}

#[test]
fn bt_gradients_match_finite_differences() {
    // A few interior u elements plus one uncritical padding element.
    let app = Bt::mini();
    let interior = ((6 * 13 + 6) * 13 + 6) * 5; // u[6][6][6][0]
    let pad = ((6 * 13 + 12) * 13 + 3) * 5; // u[6][12][3][0] — dead plane
    check_gradients(&app, 0, &[interior, interior + 4, pad], 1e-3);
}

#[test]
fn cg_gradients_match_finite_differences() {
    let app = Cg::mini();
    let na = app.na;
    check_gradients(&app, 0, &[0, na / 2, na, na + 1], 1e-3);
}
