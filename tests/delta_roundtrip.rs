//! Delta-checkpoint round trips: base → delta → rebase chains written
//! through the async engine (and the blocking store) must restore
//! **bit-identically** through the existing reader for every `VarData`
//! dtype, retention must never prune a base out from under a live chain,
//! and — as a property over random epoch histories — delta-chain
//! reconstruction must equal a monolithic save byte for byte.
//!
//! CI runs this suite in release alongside the engine stress tests:
//! debug-mode timing serializes the engine's delta turnstile enough to
//! hide ordering races.

use proptest::prelude::*;
use scrutiny_ckpt::writer::{serialize, serialize_data};
use scrutiny_ckpt::{
    delta, names, Bitmap, CheckpointStore, DeltaPolicy, FillPolicy, Regions, VarData, VarPlan,
    VarRecord,
};
use scrutiny_engine::{read_version, EngineConfig, EngineHandle, MemBackend, StorageBackend};
use std::sync::Arc;

/// One state with all three dtypes; `epoch` drives localized updates.
fn epoch_state(epoch: u64) -> (Vec<VarRecord>, Vec<VarPlan>) {
    let n = 500;
    let f: Vec<f64> = (0..n)
        .map(|j| {
            let base = (j as f64).cos();
            // A moving 25-element window changes per epoch.
            if (j / 25) as u64 == epoch % 20 {
                base + epoch as f64
            } else {
                base
            }
        })
        .collect();
    let c: Vec<(f64, f64)> = (0..60)
        .map(|j| {
            if j < 6 {
                (epoch as f64, -(j as f64))
            } else {
                (j as f64, -(j as f64))
            }
        })
        .collect();
    let vars = vec![
        VarRecord::new("u", VarData::F64(f)),
        VarRecord::new("y", VarData::C128(c)),
        VarRecord::new("it", VarData::I64(vec![epoch as i64, 7, 9])),
    ];
    let crit = Bitmap::from_fn(n, |j| j % 9 != 4);
    let plans = vec![
        VarPlan::Pruned(Regions::from_bitmap(&crit)),
        VarPlan::Full,
        VarPlan::Full,
    ];
    (vars, plans)
}

#[test]
fn engine_chain_restores_bit_identically_for_all_dtypes() {
    let mem = Arc::new(MemBackend::new());
    let engine = EngineHandle::open(
        mem.clone(),
        EngineConfig {
            workers: 3,
            target_shards: 3,
            delta: Some(DeltaPolicy {
                page_bytes: 256,
                rebase_every: 3,
            }),
            ..Default::default()
        },
    )
    .unwrap();

    // 7 epochs: base, 3 deltas, rebase, 2 deltas.
    let mut expected = Vec::new();
    for epoch in 0..7u64 {
        let (vars, plans) = epoch_state(epoch);
        let t = engine.submit(&vars, &plans).unwrap();
        let v = t.version();
        engine.wait(t).unwrap();
        expected.push((v, serialize(&vars, &plans).unwrap()));
    }
    // The chain lifecycle really happened: deltas and a rebase exist.
    let held = mem.list().unwrap();
    assert!(held.iter().any(|n| *n == names::delta(1)));
    assert!(held.iter().any(|n| *n == names::data(4)), "epoch 4 rebases");
    assert!(held.iter().any(|n| *n == names::delta(6)));

    for (v, blocking) in &expected {
        let (data, aux) = read_version(mem.as_ref(), *v).unwrap();
        assert_eq!(&data, &blocking.data, "version {v} data image");
        assert_eq!(&aux, &blocking.aux, "version {v} aux image");

        // And through the typed reader: every dtype materializes to the
        // exact values that were submitted.
        let ck = scrutiny_ckpt::Checkpoint::from_bytes(&data, &aux).unwrap();
        let (vars, _) = epoch_state(*v);
        let VarData::F64(want_f) = &vars[0].data else {
            unreachable!()
        };
        let got = ck
            .var("u")
            .unwrap()
            .materialize_f64(FillPolicy::Sentinel(f64::NAN))
            .unwrap();
        for (j, (&g, &w)) in got.iter().zip(want_f).enumerate() {
            if j % 9 != 4 {
                assert_eq!(g, w, "version {v} f64 element {j}");
            }
        }
        let VarData::C128(want_c) = &vars[1].data else {
            unreachable!()
        };
        assert_eq!(
            &ck.var("y")
                .unwrap()
                .materialize_c128(FillPolicy::Zero)
                .unwrap(),
            want_c,
            "version {v} c128"
        );
        let VarData::I64(want_i) = &vars[2].data else {
            unreachable!()
        };
        assert_eq!(
            &ck.var("it").unwrap().materialize_i64(0).unwrap(),
            want_i,
            "version {v} i64"
        );
    }
}

#[test]
fn store_and_engine_agree_on_chain_layout() {
    // The blocking store and the async engine, fed the same epochs with
    // the same policy, publish the same commit markers and the same
    // reconstructed images.
    let dir = std::env::temp_dir().join(format!("scrutiny_dlt_agree_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let policy = DeltaPolicy {
        page_bytes: 256,
        rebase_every: 2,
    };
    let mut store = CheckpointStore::open(&dir, 16).unwrap();
    let mem = Arc::new(MemBackend::new());
    let engine = EngineHandle::open(
        mem.clone(),
        EngineConfig {
            delta: Some(policy),
            ..Default::default()
        },
    )
    .unwrap();
    for epoch in 0..5u64 {
        let (vars, plans) = epoch_state(epoch);
        store.save_delta(&vars, &plans, &policy).unwrap();
        let t = engine.submit(&vars, &plans).unwrap();
        engine.wait(t).unwrap();
    }
    for v in 0..5u64 {
        let on_disk = dir.join(names::delta(v)).exists();
        let in_mem = mem.list().unwrap().iter().any(|n| *n == names::delta(v));
        assert_eq!(on_disk, in_mem, "version {v} delta marker");
        let (engine_data, _) = read_version(mem.as_ref(), v).unwrap();
        let store_data =
            delta::read_data_image(v, |name| std::fs::read(dir.join(name)).map_err(Into::into))
                .unwrap();
        assert_eq!(engine_data, store_data, "version {v} image");
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn retention_never_breaks_a_live_chain_across_reopen() {
    let dir = std::env::temp_dir().join(format!("scrutiny_dlt_ret_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let policy = DeltaPolicy {
        page_bytes: 256,
        rebase_every: 4,
    };
    {
        let mut store = CheckpointStore::open(&dir, 2).unwrap();
        for epoch in 0..5u64 {
            let (vars, plans) = epoch_state(epoch);
            store.save_delta(&vars, &plans, &policy).unwrap();
        }
        // 0 base, 1..=4 deltas: every version survives keep=2 because the
        // retained deltas restore through all of them.
        assert_eq!(store.versions().unwrap(), vec![0, 1, 2, 3, 4]);
    }
    // Reopen: the sweep must not treat chain members as debris, and every
    // version must still load.
    let store = CheckpointStore::open(&dir, 2).unwrap();
    assert_eq!(store.versions().unwrap(), vec![0, 1, 2, 3, 4]);
    for v in 0..5u64 {
        let (vars, _) = epoch_state(v);
        let VarData::I64(want) = &vars[2].data else {
            unreachable!()
        };
        assert_eq!(
            &store
                .load(v)
                .unwrap()
                .var("it")
                .unwrap()
                .materialize_i64(0)
                .unwrap(),
            want,
            "version {v} after reopen"
        );
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Delta-chain reconstruction is bit-identical to a monolithic save:
    /// for a random initial state and random localized mutations per
    /// epoch, reconstructing the newest (and every intermediate) version
    /// through the chain equals serializing that epoch's state directly.
    #[test]
    fn delta_chain_equals_monolithic_save(
        seed in 0u64..1_000_000,
        epochs in 2usize..6,
        page_bytes in 1usize..600,
        nvals in 1usize..400,
    ) {
        let dir = std::env::temp_dir().join(format!(
            "scrutiny_dlt_prop_{}_{seed}_{epochs}_{page_bytes}_{nvals}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let policy = DeltaPolicy { page_bytes, rebase_every: 3 };
        let mut store = CheckpointStore::open(&dir, 32).unwrap();

        // splitmix-ish deterministic value stream from the seed.
        let mut z = seed;
        let mut next = move || {
            z = z.wrapping_add(0x9E3779B97F4A7C15);
            let mut x = z;
            x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
            x ^ (x >> 31)
        };
        let mut vals: Vec<f64> = (0..nvals).map(|_| next() as f64 / 1e18).collect();
        let crit = Bitmap::from_fn(nvals, |j| j % 5 != 1);
        let plans = vec![VarPlan::Pruned(Regions::from_bitmap(&crit))];

        let mut images = Vec::new();
        for _epoch in 0..epochs {
            // Random localized mutation: one contiguous window.
            let at = (next() as usize) % nvals;
            let len = ((next() as usize) % (nvals / 4 + 1)).min(nvals - at);
            for v in &mut vals[at..at + len.max(1).min(nvals - at)] {
                *v += 1.0;
            }
            let vars = vec![VarRecord::new("u", VarData::F64(vals.clone()))];
            let (version, _) = store.save_delta(&vars, &plans, &policy).unwrap();
            images.push((version, serialize_data(&vars, &plans).unwrap().0));
        }
        for (version, want) in &images {
            let got = delta::read_data_image(*version, |name| {
                std::fs::read(dir.join(name)).map_err(Into::into)
            }).unwrap();
            prop_assert_eq!(&got, want);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
