//! Differential test harness: run the AD value criterion and the static
//! data-dependency analyzer over every NPB kernel and assert the safety
//! invariant (**datadep-critical ⊇ ad-critical**) plus an explicit,
//! pinned expectation for every remaining disagreement.
//!
//! Each kernel test checks, via `assert_safety_invariant`:
//!
//! 1. the bitmap-level superset relation (independent of the classifier),
//! 2. zero `AdCriticalDataDepDead` entries,
//! 3. that the disagreement list accounts for exactly the differing
//!    elements, and
//! 4. a witness data-flow path on every over-approximation group,
//!
//! and then pins the per-variable over-approximation counts, so any drift
//! in either analyzer shows up as a named diff against the table below.
//! FT at class S records a 26M-node tape and follows the
//! `paper_counts_class_s.rs` convention of being `#[ignore]`d (its mini
//! instance runs here instead). IS is integer-only and is cross-checked
//! through its liveness tracker rather than AD.
//!
//! CI runs this suite in release mode (see `.github/workflows/ci.yml`).

use scrutiny_core::{
    checkpoint_restart_cycle, scrutinize, scrutinize_with, Analyzer, FillPolicy, Policy,
    RestartConfig, ScrutinyApp, ScrutinyOptions,
};
use scrutiny_integration::{
    assert_safety_invariant, datadep_uncritical_matrix, differential_case, explain,
    DifferentialCase,
};
use scrutiny_npb::is::IsSite;
use scrutiny_npb::{ad_suite_mini, Bt, Cg, Ep, Ft, Is, Lu, Mg, Sp};

/// Run both analyzers, prove the safety invariant, and pin each
/// variable's over-approximation count (`expected` lists every variable
/// with a *nonzero* count; all others must have zero).
fn check_kernel(app: &dyn ScrutinyApp, expected: &[(&str, usize)]) -> DifferentialCase {
    let case = differential_case(app, &ScrutinyOptions::default()).unwrap();
    assert_safety_invariant(&case);
    let rep = &case.report;

    // The static verdict must equal the AD report's own structural map:
    // both are the same reachability question over the same tape, so the
    // differential harness re-derives Table II's cancellation-only story.
    for (va, vd) in rep.ad.vars.iter().zip(&rep.datadep.vars) {
        assert_eq!(
            vd.value_map, va.structural_map,
            "{}: datadep verdict for {} diverged from the structural sweep",
            case.name, va.spec.name
        );
        let want = expected
            .iter()
            .find(|(n, _)| *n == va.spec.name)
            .map_or(0, |&(_, c)| c);
        assert_eq!(
            va.cancellation_only().len(),
            want,
            "{}: over-approximation count drifted for {}\n{}",
            case.name,
            va.spec.name,
            explain(rep)
        );
    }
    let total: usize = expected.iter().map(|&(_, c)| c).sum();
    assert_eq!(
        rep.over_approximated_elems(),
        total,
        "{}\n{}",
        case.name,
        explain(rep)
    );
    case
}

#[test]
fn bt_class_s_differential() {
    check_kernel(&Bt::class_s(), &[]);
}

#[test]
fn sp_class_s_differential() {
    check_kernel(&Sp::class_s(), &[]);
}

#[test]
fn cg_class_s_differential() {
    check_kernel(&Cg::class_s(), &[]);
}

#[test]
fn lu_class_s_differential() {
    check_kernel(&Lu::class_s(), &[]);
}

#[test]
fn mg_class_s_differential() {
    check_kernel(&Mg::class_s(), &[]);
}

#[test]
fn ep_class_s_differential() {
    check_kernel(&Ep::class_s(), &[]);
}

#[test]
fn ft_mini_differential() {
    check_kernel(&Ft::mini(), &[]);
}

#[test]
#[ignore = "26M-node tape; run explicitly or via gen_table2"]
fn ft_class_s_differential() {
    check_kernel(&Ft::class_s(), &[]);
}

/// IS has no floats to differentiate; its liveness tracker is the static
/// analyzer for integer state, and its verdict is pinned here next to
/// the float kernels so the eight-benchmark matrix is complete.
#[test]
fn is_class_s_liveness_verdict() {
    let is = Is::class_s();
    let out = is.run(IsSite::Track);
    let by_name = |n: &str| out.reports.iter().find(|r| r.name == n).unwrap();
    let ka = by_name("key_array");
    assert_eq!(ka.uncritical(), 2);
    assert!(!ka.critical[is.ckpt_at] && !ka.critical[is.ckpt_at + is.iterations]);
    let bp = by_name("bucket_ptrs");
    assert_eq!(bp.uncritical(), bp.critical.len(), "recomputed before read");
    assert_eq!(by_name("passed_verification").uncritical(), 0);
    assert_eq!(by_name("iteration").uncritical(), 0);
}

/// `Analyzer::Both` must hand back exactly the AD verdict while the
/// differential entry point exposes both reports — pinned on a real
/// kernel, not just the tiny in-crate fixtures.
#[test]
fn both_matches_single_analyzer_runs_on_cg() {
    let app = Cg::mini();
    let opts = ScrutinyOptions::default();
    let both = scrutinize_with(
        &app,
        &ScrutinyOptions {
            analyzer: Analyzer::Both,
            ..opts.clone()
        },
    )
    .unwrap();
    let ad = scrutinize(&app).unwrap();
    let dd = scrutinize_with(
        &app,
        &ScrutinyOptions {
            analyzer: Analyzer::DataDep,
            ..opts.clone()
        },
    )
    .unwrap();
    let diff = differential_case(&app, &opts).unwrap().report;
    for (a, b) in ad.vars.iter().zip(&both.vars) {
        assert_eq!(a.value_map, b.value_map);
        assert_eq!(a.structural_map, b.structural_map);
    }
    for (a, d) in ad.vars.iter().zip(&diff.ad.vars) {
        assert_eq!(a.value_map, d.value_map);
    }
    for (s, d) in dd.vars.iter().zip(&diff.datadep.vars) {
        assert_eq!(s.value_map, d.value_map);
    }
    assert_eq!(both.analyzer, Analyzer::Ad);
    assert_eq!(dd.analyzer, Analyzer::DataDep);
}

/// The fault-injection face of the invariant: corrupt datadep-uncritical
/// elements across the whole corruption-model matrix on every mini
/// kernel — zero failed restarts anywhere, because datadep-uncritical ⊆
/// ad-uncritical ⇒ zero adjoint.
#[test]
fn datadep_uncritical_matrix_never_breaks_a_restart() {
    let opts = ScrutinyOptions {
        analyzer: Analyzer::DataDep,
        ..ScrutinyOptions::default()
    };
    for app in ad_suite_mini() {
        let dd = scrutinize_with(app.as_ref(), &opts).unwrap();
        for (model, report) in datadep_uncritical_matrix(app.as_ref(), &dd, 2) {
            assert_eq!(
                report.failed, 0,
                "{} under {model:?}: datadep-uncritical corruption broke a restart",
                dd.app.name
            );
        }
    }
}

/// End-to-end §IV.C restart from a checkpoint planned by the *static*
/// analyzer alone: prune its dead elements, garbage-fill them on
/// restore, and the rerun still verifies — while never storing less
/// than the AD plan would.
#[test]
fn datadep_only_plan_restarts_every_mini_kernel() {
    let opts = ScrutinyOptions {
        analyzer: Analyzer::DataDep,
        ..ScrutinyOptions::default()
    };
    let cfg = RestartConfig {
        policy: Policy::PrunedValue,
        fill: FillPolicy::Garbage(0xD1FF),
        store_dir: None,
    };
    for app in ad_suite_mini() {
        let dd = scrutinize_with(app.as_ref(), &opts).unwrap();
        let report = checkpoint_restart_cycle(app.as_ref(), &dd, &cfg).unwrap();
        assert!(
            report.verified,
            "{}: datadep-planned restart failed verification (rel err {})",
            dd.app.name, report.rel_err
        );
        let ad = scrutinize(app.as_ref()).unwrap();
        assert!(
            dd.total_uncritical() <= ad.total_uncritical(),
            "{}: static plan pruned more than the AD plan",
            dd.app.name
        );
    }
}
