//! On-disk checkpoint behaviour: round trips, corruption detection,
//! retention, fill policies.

use scrutiny_ckpt::writer::serialize;
use scrutiny_ckpt::{
    Bitmap, Checkpoint, CheckpointStore, CkptError, FillPolicy, Regions, VarData, VarPlan,
    VarRecord,
};
use std::fs;
use std::path::PathBuf;

fn tmp(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("scrutiny_it_{tag}_{}", std::process::id()));
    let _ = fs::remove_dir_all(&d);
    d
}

fn sample() -> (Vec<VarRecord>, Vec<VarPlan>) {
    let vals: Vec<f64> = (0..1000).map(|i| (i as f64).sin()).collect();
    let crit = Bitmap::from_fn(1000, |i| i % 7 != 3);
    (
        vec![
            VarRecord::new("u", VarData::F64(vals)),
            VarRecord::new("sums", VarData::C128(vec![(1.0, 2.0); 8])),
            VarRecord::new("it", VarData::I64(vec![42])),
        ],
        vec![
            VarPlan::Pruned(Regions::from_bitmap(&crit)),
            VarPlan::Full,
            VarPlan::Full,
        ],
    )
}

#[test]
fn disk_roundtrip_preserves_critical_elements() {
    let dir = tmp("roundtrip");
    let (vars, plans) = sample();
    let mut store = CheckpointStore::open(&dir, 3).unwrap();
    let (version, _) = store.save(&vars, &plans).unwrap();
    let ck = store.load(version).unwrap();
    let u = ck
        .var("u")
        .unwrap()
        .materialize_f64(FillPolicy::Sentinel(-1.0))
        .unwrap();
    for (i, v) in u.iter().enumerate() {
        if i % 7 != 3 {
            assert_eq!(*v, (i as f64).sin());
        } else {
            assert_eq!(*v, -1.0);
        }
    }
    assert_eq!(ck.var("it").unwrap().materialize_i64(0).unwrap(), vec![42]);
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn on_disk_bitrot_is_detected() {
    let dir = tmp("bitrot");
    let (vars, plans) = sample();
    let mut store = CheckpointStore::open(&dir, 2).unwrap();
    let (version, _) = store.save(&vars, &plans).unwrap();
    // Flip one byte mid-file.
    let data_path = dir.join(format!("ckpt_{version:06}.data"));
    let mut bytes = fs::read(&data_path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    fs::write(&data_path, &bytes).unwrap();
    match store.load(version) {
        Err(CkptError::ChecksumMismatch { .. }) => {}
        Err(other) => panic!("expected checksum mismatch, got {other}"),
        Ok(_) => panic!("corrupted checkpoint loaded successfully"),
    }
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn retention_keeps_only_newest() {
    let dir = tmp("keep");
    let (vars, plans) = sample();
    let mut store = CheckpointStore::open(&dir, 2).unwrap();
    for _ in 0..5 {
        store.save(&vars, &plans).unwrap();
    }
    assert_eq!(store.versions().unwrap().len(), 2);
    assert!(store.load_latest().is_ok());
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn aux_and_data_must_agree() {
    let (vars, plans) = sample();
    let ser = serialize(&vars, &plans).unwrap();
    // Swap in the aux file of a different plan set.
    let full: Vec<VarPlan> = vars.iter().map(|_| VarPlan::Full).collect();
    let ser_full = serialize(&vars, &full).unwrap();
    assert!(Checkpoint::from_bytes(&ser.data, &ser_full.aux).is_err());
}

#[test]
fn garbage_fill_is_deterministic_across_loads() {
    let (vars, plans) = sample();
    let ser = serialize(&vars, &plans).unwrap();
    let a = Checkpoint::from_bytes(&ser.data, &ser.aux)
        .unwrap()
        .var("u")
        .unwrap()
        .materialize_f64(FillPolicy::Garbage(9))
        .unwrap();
    let b = Checkpoint::from_bytes(&ser.data, &ser.aux)
        .unwrap()
        .var("u")
        .unwrap()
        .materialize_f64(FillPolicy::Garbage(9))
        .unwrap();
    assert_eq!(a, b);
}
