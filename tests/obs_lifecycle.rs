//! The observability acceptance contract: a burn-in → corrupt → recover
//! run executed with a live recorder must leave a JSONL event log from
//! which the **full per-version lifecycle** — submission, shard count,
//! bytes written, commit, rejection reasons, recovered version — can be
//! reconstructed without consulting any other output; and the span log
//! must contain exactly one commit span per *published* version, none
//! for versions whose publish failed.

use scrutiny_core::{scrutinize, EngineConfig, EngineHandle, MemBackend, Policy, RecoveryWalk};
use scrutiny_engine::{DeltaPolicy, StorageBackend};
use scrutiny_faultinj::StorageScenario;
use scrutiny_npb::{burn_in_recover_observed, Cg};
use scrutiny_obs::{validate_jsonl, FieldValue, Recorder, Snapshot};
use std::collections::BTreeMap;
use std::sync::Arc;

fn field_u64(fields: &[(String, FieldValue)], key: &str) -> Option<u64> {
    fields.iter().find(|(k, _)| k == key).and_then(|(_, v)| {
        if let FieldValue::U64(n) = v {
            Some(*n)
        } else {
            None
        }
    })
}

fn field_str<'a>(fields: &'a [(String, FieldValue)], key: &str) -> Option<&'a str> {
    fields.iter().find(|(k, _)| k == key).and_then(|(_, v)| {
        if let FieldValue::Str(s) = v {
            Some(s.as_str())
        } else {
            None
        }
    })
}

/// The ISSUE's acceptance criterion, end to end: run the NPB recovery
/// burn-in with a live recorder, serialize the log to JSONL, parse it
/// back, and reconstruct the whole run from the parsed log **alone**.
/// The returned report is consulted only afterwards, to confirm the
/// reconstruction matches what the code under test said happened.
#[test]
fn recovery_lifecycle_reconstructs_from_jsonl_alone() {
    const EPOCHS: usize = 3;
    let rec = Recorder::with_capacity(1 << 16);
    let engine = EngineHandle::open(
        Arc::new(MemBackend::new()),
        EngineConfig {
            recorder: rec.clone(),
            ..Default::default()
        },
    )
    .unwrap();
    let app = Cg::mini();
    let analysis = scrutinize(&app).unwrap();
    let report = burn_in_recover_observed(
        &app,
        &analysis,
        &engine,
        EPOCHS,
        Policy::Full,
        StorageScenario::FlippedPayloadByte,
        &rec,
    )
    .unwrap();

    // Serialize → validate → parse back. Everything below reads `snap`.
    let jsonl = rec.snapshot().to_jsonl();
    let summary = validate_jsonl(&jsonl).expect("emitted JSONL violates its own schema");
    assert!(summary.points > 0 && summary.span_starts > 0);
    let snap = Snapshot::from_jsonl(&jsonl).unwrap();
    let spans = snap.spans();

    // 1. Submissions: one `engine.submit` span per epoch, versions 0..N,
    //    each carrying the shard count the submission fanned out into.
    let mut submitted: BTreeMap<u64, u64> = BTreeMap::new();
    for s in spans.iter().filter(|s| s.name == "engine.submit") {
        let v = s.field_u64("version").expect("submit span has a version");
        let shards = s.field_u64("shards").expect("submit span has shards");
        assert!(shards >= 1);
        assert!(
            submitted.insert(v, shards).is_none(),
            "duplicate submit v{v}"
        );
    }
    let versions: Vec<u64> = submitted.keys().copied().collect();
    assert_eq!(versions, (0..EPOCHS as u64).collect::<Vec<_>>());
    let newest = *versions.last().unwrap();

    // 2. Bytes written: every version published an `engine.published`
    //    point whose byte breakdown sums to total_bytes.
    let mut published: BTreeMap<u64, u64> = BTreeMap::new();
    for ev in snap.events_named("engine.published") {
        let v = field_u64(&ev.fields, "version").unwrap();
        let total = field_u64(&ev.fields, "total_bytes").unwrap();
        let parts = field_u64(&ev.fields, "payload_bytes").unwrap()
            + field_u64(&ev.fields, "aux_bytes").unwrap()
            + field_u64(&ev.fields, "header_bytes").unwrap();
        assert_eq!(total, parts, "v{v} byte breakdown does not sum");
        assert!(field_u64(&ev.fields, "payload_bytes").unwrap() > 0);
        published.insert(v, total);
    }
    assert_eq!(
        published.keys().copied().collect::<Vec<_>>(),
        versions,
        "every submitted version published"
    );

    // 3. Commits: exactly one `engine.commit` span per published
    //    version, nested under that version's `engine.publish` span, and
    //    carrying the marker object + size.
    for &v in published.keys() {
        let commits: Vec<_> = spans
            .iter()
            .filter(|s| s.name == "engine.commit" && s.field_u64("version") == Some(v))
            .collect();
        assert_eq!(commits.len(), 1, "v{v} must commit exactly once");
        let commit = commits[0];
        assert!(commit.field_u64("marker_bytes").unwrap() > 0);
        assert!(commit.end_us.is_some(), "commit span closed");
        let parent = spans
            .iter()
            .find(|s| s.id == commit.parent)
            .expect("commit span has a recorded parent");
        assert_eq!(parent.name, "engine.publish");
        assert_eq!(parent.field_u64("version"), Some(v));
        assert!(
            parent.end_us.is_some(),
            "v{v}: publish span closes before the ticket resolves"
        );
    }

    // 4. The injected fault: scenario, victim version, damaged object.
    let inject = snap
        .events_named("faultinj.inject")
        .next()
        .expect("injection left a trace");
    assert_eq!(
        field_str(&inject.fields, "scenario"),
        Some("flipped_payload_byte")
    );
    assert_eq!(field_u64(&inject.fields, "version"), Some(newest));
    let damaged_object = field_str(&inject.fields, "object").unwrap().to_string();

    // 5. The recovery walk: newest examined first and rejected with a
    //    reason, an older intact version recovered.
    let walk = RecoveryWalk::from_snapshot(&snap);
    assert_eq!(walk.candidates.first(), Some(&newest));
    let (rejected_v, reason) = walk.rejected.first().expect("damaged newest was rejected");
    assert_eq!(*rejected_v, newest);
    assert!(!reason.is_empty(), "rejection carries its reason");
    let recovered = walk.recovered.expect("an intact version recovered");
    assert!(recovered < newest);
    assert!(
        published.contains_key(&recovered),
        "recovered version is one the log saw published"
    );

    // 6. The per-epoch application view: one `npb.epoch` point per
    //    epoch, with the wait time and the bytes that epoch stored.
    let epochs: Vec<_> = snap.events_named("npb.epoch").collect();
    assert_eq!(epochs.len(), EPOCHS);
    for (i, ev) in epochs.iter().enumerate() {
        assert_eq!(field_u64(&ev.fields, "epoch"), Some(i as u64));
        let v = field_u64(&ev.fields, "version").unwrap();
        assert_eq!(
            field_u64(&ev.fields, "total_bytes"),
            published.get(&v).copied()
        );
    }

    // Only now consult the report: the log-derived story must agree
    // with what the run itself returned.
    assert_eq!(report.newest_version, newest);
    assert_eq!(report.recovered_version, recovered);
    assert_eq!(report.rejected_versions, vec![newest]);
    assert_eq!(report.damaged, damaged_object);
    assert!(report.verified);
}

/// Satellite 4's commit-span contract on the delta path: a version whose
/// publish fails (here: every storage put of version 1 errors) must
/// appear in the log with a submission and a `engine.publish_failed`
/// point but **no** commit span, while every published version gets
/// exactly one — even though delta epochs route their commit through the
/// chain writer rather than the monolithic marker put.
#[test]
fn exactly_one_commit_span_per_published_version_including_failed_delta_epochs() {
    /// Fails every put belonging to version 1; everything else goes to
    /// the wrapped in-memory backend.
    struct FailV1(MemBackend);
    impl StorageBackend for FailV1 {
        fn put(&self, name: &str, bytes: &[u8]) -> Result<(), scrutiny_ckpt::CkptError> {
            if scrutiny_ckpt::names::committed_version(name) == Some(1)
                || matches!(
                    scrutiny_ckpt::names::classify(name),
                    scrutiny_ckpt::names::CkptName::Aux(1)
                )
            {
                return Err(scrutiny_ckpt::CkptError::Corrupt("epoch 1 lost".into()));
            }
            self.0.put(name, bytes)
        }
        fn get(&self, name: &str) -> Result<Vec<u8>, scrutiny_ckpt::CkptError> {
            self.0.get(name)
        }
        fn list(&self) -> Result<Vec<String>, scrutiny_ckpt::CkptError> {
            self.0.list()
        }
        fn delete(&self, name: &str) -> Result<(), scrutiny_ckpt::CkptError> {
            self.0.delete(name)
        }
        fn label(&self) -> String {
            "fail-v1".into()
        }
    }

    let rec = Recorder::with_capacity(1 << 14);
    let engine = EngineHandle::open(
        Arc::new(FailV1(MemBackend::new())),
        EngineConfig {
            workers: 2,
            delta: Some(DeltaPolicy {
                page_bytes: 256,
                rebase_every: 10,
            }),
            recorder: rec.clone(),
            ..Default::default()
        },
    )
    .unwrap();

    let mut vars = vec![scrutiny_ckpt::VarRecord::new(
        "u",
        scrutiny_ckpt::VarData::F64((0..300).map(|i| i as f64).collect()),
    )];
    let plans = vec![scrutiny_ckpt::VarPlan::Full];
    let mut outcomes = Vec::new();
    for epoch in 0..4u64 {
        if let scrutiny_ckpt::VarData::F64(v) = &mut vars[0].data {
            v[0] = epoch as f64 + 0.25;
        }
        let t = engine.submit(&vars, &plans).unwrap();
        outcomes.push(engine.wait(t).is_ok());
    }
    assert_eq!(outcomes, vec![true, false, true, true]);

    // Round-trip the log through JSONL: the contract holds on the
    // serialized form, not just the live snapshot.
    let jsonl = rec.snapshot().to_jsonl();
    let snap = Snapshot::from_jsonl(&jsonl).unwrap();
    let spans = snap.spans();

    let published: Vec<u64> = snap
        .events_named("engine.published")
        .filter_map(|ev| field_u64(&ev.fields, "version"))
        .collect();
    assert_eq!(published, vec![0, 2, 3]);

    let mut commit_counts: BTreeMap<u64, usize> = BTreeMap::new();
    for s in spans.iter().filter(|s| s.name == "engine.commit") {
        *commit_counts
            .entry(s.field_u64("version").unwrap())
            .or_default() += 1;
    }
    for v in &published {
        assert_eq!(
            commit_counts.get(v),
            Some(&1),
            "v{v}: exactly one commit span"
        );
    }
    assert!(
        !commit_counts.contains_key(&1),
        "the failed epoch must not have a commit span"
    );

    let failed = snap
        .events_named("engine.publish_failed")
        .next()
        .expect("the failed publish left a point event");
    assert_eq!(field_u64(&failed.fields, "version"), Some(1));
    assert!(field_str(&failed.fields, "error").is_some());

    assert_eq!(snap.counter("engine.submissions"), Some(4));
    assert_eq!(snap.counter("engine.commits"), Some(3));
    assert_eq!(snap.counter("engine.publish_failures"), Some(1));

    // A fifth submission into a disabled recorder leaves no trace: the
    // default path stays observability-free.
    let quiet = EngineHandle::open(Arc::new(MemBackend::new()), EngineConfig::default()).unwrap();
    let t = quiet.submit(&vars, &plans).unwrap();
    quiet.wait(t).unwrap();
    assert_eq!(quiet.recorder().snapshot(), Snapshot::empty());
}

/// The compression block's observability contract: an engine publishing
/// with the at-rest codec emits one `ckpt.compress` span per compressed
/// object and advances the `engine.raw_bytes` / `engine.compressed_bytes`
/// counters; restoring those objects through the observed parallel
/// pipeline emits `ckpt.decompress` spans. All of it survives the JSONL
/// round trip.
#[test]
fn compression_spans_and_byte_counters_cover_publish_and_restore() {
    let rec = Recorder::with_capacity(1 << 14);
    let mem = Arc::new(MemBackend::new());
    let engine = EngineHandle::open(
        mem.clone(),
        EngineConfig {
            recorder: rec.clone(),
            codec: scrutiny_ckpt::CodecConfig {
                at_rest: scrutiny_ckpt::AtRest::Auto,
                ..Default::default()
            },
            ..Default::default()
        },
    )
    .unwrap();

    let app = Cg::mini();
    let analysis = scrutinize(&app).unwrap();
    let vars = scrutiny_core::restart::capture_state(&app);
    let plans = scrutiny_core::plan::plans_for(&analysis, Policy::PrunedValue);
    for _ in 0..2 {
        let t = engine.submit(&vars, &plans).unwrap();
        engine.wait(t).unwrap();
    }

    // Restore version 0 through the observed pipeline so the decode side
    // lands in the same log.
    let fetch = |name: &str| mem.get(name);
    let (image, _) = scrutiny_ckpt::read_data_image_parallel_obs(
        0,
        &fetch,
        &scrutiny_engine::RestoreOptions { threads: 2 },
        &rec,
    )
    .unwrap();
    assert!(!image.is_empty());

    let jsonl = rec.snapshot().to_jsonl();
    validate_jsonl(&jsonl).expect("emitted JSONL violates its own schema");
    let snap = Snapshot::from_jsonl(&jsonl).unwrap();
    let spans = snap.spans();

    let compresses: Vec<_> = spans.iter().filter(|s| s.name == "ckpt.compress").collect();
    assert!(
        !compresses.is_empty(),
        "each compressed publish runs under a ckpt.compress span"
    );
    for s in &compresses {
        assert!(s.field_u64("raw_bytes").unwrap() > 0);
        assert!(s.end_us.is_some(), "compress span closed");
    }

    let decompresses: Vec<_> = spans
        .iter()
        .filter(|s| s.name == "ckpt.decompress")
        .collect();
    assert!(
        !decompresses.is_empty(),
        "the observed restore decodes under ckpt.decompress spans"
    );
    for s in &decompresses {
        assert!(s.field_u64("stored_bytes").unwrap() > 0);
    }

    let raw = snap.counter("engine.raw_bytes").unwrap();
    let stored = snap.counter("engine.compressed_bytes").unwrap();
    assert!(
        0 < stored && stored <= raw,
        "byte counters: stored {stored} vs raw {raw}"
    );
}
