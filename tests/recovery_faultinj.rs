//! Faultinj-driven recovery suite: every storage-corruption scenario —
//! truncated shard, flipped payload byte, deleted delta base, missing
//! commit marker — must end in a *successful* recovery to an older
//! verified version, with the recovered image **bit-identical** to that
//! version's blocking save and a `RecoveryReport` naming each rejected
//! version. Plus the parallel-restore bit-identity property: on all
//! three layouts (monolithic, sharded, delta chain) and any thread
//! count, `read_data_image_parallel` equals the serial reader byte for
//! byte.
//!
//! CI runs this suite in release next to the stress/delta/segmented
//! suites: the restore pipeline is multi-threaded, and debug-mode
//! timing can hide job-claiming races.

use proptest::prelude::*;
use scrutiny_ckpt::delta::read_data_image;
use scrutiny_ckpt::restore::{read_data_image_parallel, RestoreOptions};
use scrutiny_ckpt::writer::serialize;
use scrutiny_ckpt::{
    names, Bitmap, Checkpoint, CkptError, FillPolicy, Regions, VarData, VarPlan, VarRecord,
};
use scrutiny_engine::{
    DeltaPolicy, EngineConfig, EngineHandle, Layout, MemBackend, RecoveryConfig, RecoveryManager,
    StorageBackend,
};
use scrutiny_faultinj::StorageScenario;
use std::sync::Arc;

/// One distinct state per epoch (all three dtypes; pruned + full plans).
fn epoch_state(epoch: u64) -> (Vec<VarRecord>, Vec<VarPlan>) {
    let n = 400;
    let f: Vec<f64> = (0..n)
        .map(|j| {
            (j as f64 * 0.1).sin()
                + if j as u64 % 37 == epoch % 37 {
                    1.0
                } else {
                    0.0
                }
        })
        .collect();
    let vars = vec![
        VarRecord::new("u", VarData::F64(f)),
        VarRecord::new(
            "y",
            VarData::C128((0..50).map(|j| (j as f64, epoch as f64)).collect()),
        ),
        VarRecord::new("it", VarData::I64(vec![epoch as i64, 3])),
    ];
    let crit = Bitmap::from_fn(n, |j| j % 5 != 2);
    let plans = vec![
        VarPlan::Pruned(Regions::from_bitmap(&crit)),
        VarPlan::Full,
        VarPlan::Full,
    ];
    (vars, plans)
}

/// Expected (blocking-save) data/aux images, one pair per epoch.
type ExpectedImages = Vec<(Vec<u8>, Vec<u8>)>;

/// Run `epochs` submits through an engine with `cfg` over a fresh
/// `MemBackend`; returns the backend plus each epoch's expected
/// (blocking-save) data/aux images.
fn filled(cfg: EngineConfig, epochs: u64) -> (Arc<MemBackend>, ExpectedImages) {
    let mem = Arc::new(MemBackend::new());
    let engine = EngineHandle::open(mem.clone(), cfg).unwrap();
    let mut expected = Vec::new();
    for e in 0..epochs {
        let (vars, plans) = epoch_state(e);
        let t = engine.submit(&vars, &plans).unwrap();
        assert_eq!(t.version(), e);
        engine.wait(t).unwrap();
        let ser = serialize(&vars, &plans).unwrap();
        expected.push((ser.data, ser.aux));
    }
    (mem, expected)
}

fn recover(mem: Arc<MemBackend>) -> scrutiny_engine::Recovered {
    RecoveryManager::new(mem, RecoveryConfig::default())
        .recover_latest()
        .unwrap()
}

#[test]
fn truncated_shard_recovers_prior_version_bit_identically() {
    let (mem, expected) = filled(
        EngineConfig {
            workers: 3,
            target_shards: 4,
            layout: Layout::Sharded,
            ..Default::default()
        },
        3,
    );
    let damaged = StorageScenario::TruncatedShard
        .inject(mem.as_ref(), 2)
        .unwrap();
    assert_eq!(damaged, names::shard(2, 0));

    let r = recover(mem);
    assert_eq!(r.version, 1);
    assert_eq!(r.report.rejected_versions(), vec![2]);
    assert!(
        matches!(
            r.report.rejected[0].error,
            CkptError::Corrupt(_) | CkptError::ChecksumMismatch { .. }
        ),
        "reason: {}",
        r.report.rejected[0].error
    );
    assert_eq!(
        r.data, expected[1].0,
        "recovered image must be bit-identical"
    );
    assert_eq!(r.aux, expected[1].1);
}

#[test]
fn flipped_payload_byte_in_monolithic_recovers_prior_version() {
    let (mem, expected) = filled(EngineConfig::default(), 3);
    let damaged = StorageScenario::FlippedPayloadByte
        .inject(mem.as_ref(), 2)
        .unwrap();
    assert_eq!(damaged, names::data(2));

    let r = recover(mem);
    assert_eq!(r.version, 1);
    assert_eq!(r.report.rejected_versions(), vec![2]);
    assert!(matches!(
        r.report.rejected[0].error,
        CkptError::ChecksumMismatch { .. }
    ));
    assert_eq!(r.data, expected[1].0);
    assert_eq!(r.aux, expected[1].1);
}

/// The compression tentpole's fault-injection guard: damage inside a
/// `SCRUTCZB` container payload must surface as the container's own
/// typed `ChecksumMismatch` (the stored-byte CRC — detected *before*
/// decode output reaches the format layer), the recovery scan must fall
/// back past it, and the recovered image must be bit-identical to the
/// prior version's uncompressed blocking save.
#[test]
fn flipped_compressed_byte_recovers_prior_version_with_typed_rejection() {
    let (mem, expected) = filled(
        EngineConfig {
            codec: scrutiny_ckpt::CodecConfig {
                at_rest: scrutiny_ckpt::AtRest::Auto,
                ..Default::default()
            },
            ..Default::default()
        },
        3,
    );
    let damaged = StorageScenario::FlippedCompressedByte
        .inject(mem.as_ref(), 2)
        .unwrap();
    assert_eq!(damaged, names::data(2));

    let r = recover(mem);
    assert_eq!(r.version, 1);
    assert_eq!(r.report.rejected_versions(), vec![2]);
    assert!(
        matches!(
            r.report.rejected[0].error,
            CkptError::ChecksumMismatch { .. }
        ),
        "container damage must reject as a checksum mismatch, got: {}",
        r.report.rejected[0].error
    );
    assert_eq!(
        r.data, expected[1].0,
        "recovered image must decode bit-identically to the raw save"
    );
    assert_eq!(r.aux, expected[1].1);
}

#[test]
fn flipped_payload_byte_in_a_delta_link_recovers_prior_version() {
    // rebase_every=8 → version 0 is the base, 1..=3 are deltas.
    let (mem, expected) = filled(
        EngineConfig {
            delta: Some(DeltaPolicy {
                page_bytes: 128,
                rebase_every: 8,
            }),
            ..Default::default()
        },
        4,
    );
    let damaged = StorageScenario::FlippedPayloadByte
        .inject(mem.as_ref(), 3)
        .unwrap();
    assert_eq!(damaged, names::delta(3));

    let r = recover(mem);
    assert_eq!(
        r.version, 2,
        "fallback lands inside the intact chain prefix"
    );
    assert_eq!(r.report.rejected_versions(), vec![3]);
    assert_eq!(r.data, expected[2].0);
    // The recovered checkpoint restores through the typed reader too.
    let ck = Checkpoint::from_bytes(&r.data, &r.aux).unwrap();
    let (vars, _) = epoch_state(2);
    let VarData::I64(want) = &vars[2].data else {
        unreachable!()
    };
    assert_eq!(&ck.var("it").unwrap().materialize_i64(0).unwrap(), want);
}

#[test]
fn deleted_delta_base_rejects_the_whole_chain() {
    // rebase_every=2 → bases at 0 and 3; deltas at 1, 2 (on base 0) and
    // 4 (on base 3).
    let (mem, expected) = filled(
        EngineConfig {
            delta: Some(DeltaPolicy {
                page_bytes: 128,
                rebase_every: 2,
            }),
            ..Default::default()
        },
        5,
    );
    let damaged = StorageScenario::DeletedDeltaBase
        .inject(mem.as_ref(), 4)
        .unwrap();
    assert_eq!(
        damaged,
        names::data(3),
        "version 4's chain anchors on base 3"
    );

    let r = recover(mem);
    // 4 fails (its base's image is gone), 3 has artifacts but no commit
    // marker any more; 2 restores through the intact older chain 0→1→2.
    assert_eq!(r.version, 2);
    assert_eq!(r.report.rejected_versions(), vec![4, 3]);
    assert_eq!(r.data, expected[2].0);
    assert_eq!(r.aux, expected[2].1);
}

#[test]
fn missing_commit_marker_is_rejected_by_name() {
    let (mem, expected) = filled(EngineConfig::default(), 3);
    StorageScenario::MissingCommitMarker
        .inject(mem.as_ref(), 2)
        .unwrap();

    let r = recover(mem);
    assert_eq!(r.version, 1);
    assert_eq!(
        r.report.rejected_versions(),
        vec![2],
        "the uncommitted version must be named, not silently skipped"
    );
    assert!(
        r.report.rejected[0]
            .error
            .to_string()
            .contains("commit marker"),
        "reason: {}",
        r.report.rejected[0].error
    );
    assert_eq!(r.data, expected[1].0);
}

#[test]
fn every_version_corrupt_is_a_typed_unrecoverable_error() {
    let (mem, _) = filled(EngineConfig::default(), 3);
    for v in 0..3 {
        StorageScenario::FlippedPayloadByte
            .inject(mem.as_ref(), v)
            .unwrap();
    }
    let err = RecoveryManager::new(mem, RecoveryConfig::default())
        .recover_latest()
        .unwrap_err();
    match err {
        scrutiny_engine::EngineError::Unrecoverable(report) => {
            assert_eq!(report.rejected_versions(), vec![2, 1, 0]);
            assert_eq!(report.scanned, 3);
        }
        other => panic!("expected Unrecoverable, got {other}"),
    }
}

#[test]
fn load_parallel_matches_serial_load_on_a_store_chain() {
    use scrutiny_ckpt::CheckpointStore;
    let dir = std::env::temp_dir().join(format!("scrutiny_loadpar_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let policy = DeltaPolicy {
        page_bytes: 128,
        rebase_every: 3,
    };
    let mut store = CheckpointStore::open(&dir, 16).unwrap();
    for e in 0..5u64 {
        let (vars, plans) = epoch_state(e);
        store.save_delta(&vars, &plans, &policy).unwrap();
    }
    for v in 0..5u64 {
        let serial = Checkpoint::load(&dir, v).unwrap();
        let (parallel, stats) =
            Checkpoint::load_parallel(&dir, v, &RestoreOptions { threads: 3 }).unwrap();
        assert!(stats.image_bytes > 0);
        let (vars, _) = epoch_state(v);
        let VarData::F64(_) = &vars[0].data else {
            unreachable!()
        };
        let a = serial
            .var("u")
            .unwrap()
            .materialize_f64(FillPolicy::Sentinel(-1.0))
            .unwrap();
        let b = parallel
            .var("u")
            .unwrap()
            .materialize_f64(FillPolicy::Sentinel(-1.0))
            .unwrap();
        assert_eq!(a, b, "version {v}");
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(18))]

    /// Parallel restore is bit-identical to the serial reader on every
    /// layout the engine can publish — monolithic, sharded, and delta
    /// chains with random page sizes — for every committed version and
    /// any thread count.
    #[test]
    fn parallel_restore_is_bit_identical_on_all_layouts(
        seed in 0u64..1_000_000,
        epochs in 1u64..5,
        page_bytes in 32usize..512,
        threads in 0usize..5,
        mode in 0usize..3,
    ) {
        let cfg = match mode {
            0 => EngineConfig::default(),
            1 => EngineConfig {
                workers: 2,
                target_shards: 3,
                layout: Layout::Sharded,
                ..Default::default()
            },
            _ => EngineConfig {
                delta: Some(DeltaPolicy { page_bytes, rebase_every: 2 }),
                ..Default::default()
            },
        };
        let mem = Arc::new(MemBackend::new());
        let engine = EngineHandle::open(mem.clone(), cfg).unwrap();
        for e in 0..epochs {
            let (vars, plans) = epoch_state(e.wrapping_add(seed));
            let t = engine.submit(&vars, &plans).unwrap();
            engine.wait(t).unwrap();
        }
        for v in 0..epochs {
            let want = read_data_image(v, |name| mem.get(name)).unwrap();
            let (got, stats) = read_data_image_parallel(
                v,
                &|name: &str| mem.get(name),
                &RestoreOptions { threads },
            ).unwrap();
            prop_assert_eq!(&got, &want);
            prop_assert_eq!(stats.image_bytes, want.len());
        }
    }
}
