//! Fault-injection campaigns across benchmarks: the paper's §IV.C claim,
//! falsified systematically rather than once.

use scrutiny_core::{scrutinize, ScrutinyApp};
use scrutiny_faultinj::{run_campaign, CampaignConfig, Corruption, Target};
use scrutiny_npb::{Cg, Lu, Mg};

fn apps() -> Vec<Box<dyn ScrutinyApp>> {
    vec![
        Box::new(Cg::mini()),
        Box::new(Lu::mini()),
        Box::new(Mg::mini()),
    ]
}

#[test]
fn uncritical_corruption_never_fails_verification() {
    for app in apps() {
        let analysis = scrutinize(app.as_ref()).unwrap();
        let report = run_campaign(
            app.as_ref(),
            &analysis,
            &CampaignConfig {
                trials: 4,
                elems_per_trial: 32,
                ..Default::default()
            },
        );
        assert_eq!(report.failed, 0, "{}", analysis.app.name);
        assert_eq!(report.max_rel_err, 0.0, "{}", analysis.app.name);
    }
}

#[test]
fn critical_poison_always_fails_verification() {
    for app in apps() {
        let analysis = scrutinize(app.as_ref()).unwrap();
        let report = run_campaign(
            app.as_ref(),
            &analysis,
            &CampaignConfig {
                target: Target::Critical,
                corruption: Corruption::Poison(1e9),
                trials: 4,
                ..Default::default()
            },
        );
        assert_eq!(report.verified, 0, "{}", analysis.app.name);
    }
}

#[test]
fn critical_sign_flip_is_caught() {
    let app = Cg::mini();
    let analysis = scrutinize(&app).unwrap();
    let report = run_campaign(
        &app,
        &analysis,
        &CampaignConfig {
            target: Target::Critical,
            corruption: Corruption::BitFlip { bit: 63 },
            trials: 4,
            elems_per_trial: 64,
            ..Default::default()
        },
    );
    assert!(
        report.failed > 0,
        "sign flips in 64 critical elements went unnoticed"
    );
}
