//! Multi-tenant acceptance suite: four concurrent tenants drive
//! burn-ins through **one** live `scrutinyd` over a socket — one of
//! them a real NPB pipeline, the others synthetic engines on all three
//! layouts (monolithic, sharded, delta) plus chain-aware retention —
//! then one tenant's newest checkpoint is corrupted at rest and
//! recovered over the wire.
//!
//! The isolation contract under test: the victim's recovery walk never
//! scans, rejects, or prunes any other tenant's versions; every other
//! tenant's objects survive bit-identical; the victim's fallback image
//! is bit-identical to its blocking save; and the daemon's single obs
//! JSONL log reconstructs each tenant's publish/marker history.
//!
//! CI runs this suite in release next to the recovery/stress suites.

use scrutiny_ckpt::names::Tenant;
use scrutiny_ckpt::writer::serialize;
use scrutiny_ckpt::{Bitmap, Regions, VarData, VarPlan, VarRecord};
use scrutiny_core::{scrutinize, Policy};
use scrutiny_engine::{
    list_versions, DeltaPolicy, DirBackend, EngineConfig, EngineHandle, Layout, RecoveryConfig,
    RecoveryManager, StorageBackend,
};
use scrutiny_faultinj::StorageScenario;
use scrutiny_npb::{burn_in, Cg};
use scrutiny_obs::{FieldValue, Recorder, Snapshot};
use scrutinyd::{Daemon, DaemonConfig, RemoteBackend};
use std::collections::{BTreeMap, BTreeSet};
use std::path::PathBuf;
use std::sync::Arc;

const EPOCHS: u64 = 4;
/// Tenant roster: `bravo` (sharded) is the corruption victim.
const TENANTS: [&str; 4] = ["alpha", "bravo", "carol", "delta"];
const VICTIM: &str = "bravo";

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("scrutiny_tenancy_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Per-tenant engine shape: exercise every layout plus retention so the
/// victim's recovery runs next to live prunes of *other* namespaces.
fn engine_cfg(tenant: &str) -> EngineConfig {
    match tenant {
        "bravo" => EngineConfig {
            workers: 2,
            target_shards: 3,
            layout: Layout::Sharded,
            ..Default::default()
        },
        "carol" => EngineConfig {
            delta: Some(DeltaPolicy {
                page_bytes: 128,
                rebase_every: 8,
            }),
            ..Default::default()
        },
        "delta" => EngineConfig {
            keep: Some(2),
            ..Default::default()
        },
        _ => EngineConfig::default(),
    }
}

/// One distinct synthetic state per (tenant, epoch): different values
/// *and* different pruning maps, so cross-tenant bleed of any object
/// would break bit-identity somewhere.
fn tenant_state(ord: u64, epoch: u64) -> (Vec<VarRecord>, Vec<VarPlan>) {
    let n = 300;
    let f: Vec<f64> = (0..n)
        .map(|j| (j as f64 * 0.1 + ord as f64).sin() + epoch as f64)
        .collect();
    let vars = vec![
        VarRecord::new("u", VarData::F64(f)),
        VarRecord::new("it", VarData::I64(vec![ord as i64, epoch as i64])),
    ];
    let crit = Bitmap::from_fn(n, |j| (j as u64 + ord) % 5 != 2);
    let plans = vec![VarPlan::Pruned(Regions::from_bitmap(&crit)), VarPlan::Full];
    (vars, plans)
}

/// Every object a backend view holds, by name — the bit-identity unit.
fn objects(b: &dyn StorageBackend) -> BTreeMap<String, Vec<u8>> {
    b.list()
        .unwrap()
        .into_iter()
        .map(|name| {
            let bytes = b.get(&name).unwrap();
            (name, bytes)
        })
        .collect()
}

fn field<'a>(fields: &'a [(String, FieldValue)], key: &str) -> Option<&'a FieldValue> {
    fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

fn str_field(fields: &[(String, FieldValue)], key: &str) -> Option<String> {
    match field(fields, key) {
        Some(FieldValue::Str(s)) => Some(s.clone()),
        _ => None,
    }
}

#[test]
fn four_tenants_one_daemon_with_corruption_isolation_and_obs_history() {
    let dir = scratch("e2e");
    let pool = Arc::new(DirBackend::open(dir.join("pool")).unwrap());
    let obs = dir.join("daemon.jsonl");
    let cfg = DaemonConfig {
        recorder: Recorder::new(),
        obs_jsonl: Some(obs.clone()),
        ..DaemonConfig::default()
    };
    // A Unix socket where the platform has one, TCP elsewhere — the
    // suite is transport-agnostic by construction.
    #[cfg(unix)]
    let daemon = Daemon::spawn_unix(dir.join("scrutinyd.sock"), pool, cfg).unwrap();
    #[cfg(not(unix))]
    let daemon = Daemon::spawn_tcp("127.0.0.1:0", pool, cfg).unwrap();
    let endpoint = daemon.endpoint();

    // ---- Concurrent burn-in: one thread per tenant, one daemon. ----
    let threads: Vec<_> = TENANTS
        .iter()
        .enumerate()
        .map(|(ord, &name)| {
            let endpoint = endpoint.clone();
            std::thread::spawn(move || {
                let remote = Arc::new(
                    RemoteBackend::connect(endpoint, Some(Tenant::new(name).unwrap())).unwrap(),
                );
                remote.mark("burn_in_start", &[]).unwrap();
                let engine = EngineHandle::open(remote.clone(), engine_cfg(name)).unwrap();
                if name == "alpha" {
                    // A real pipeline tenant: NPB CG burned in over the
                    // wire, restart-verified from the daemon's storage.
                    let app = Cg::mini();
                    let analysis = scrutinize(&app).unwrap();
                    let report = burn_in(
                        &app,
                        &analysis,
                        &engine,
                        EPOCHS as usize,
                        Policy::PrunedValue,
                    )
                    .unwrap();
                    assert!(report.verified, "remote restart-verify failed");
                } else {
                    for epoch in 0..EPOCHS {
                        let (vars, plans) = tenant_state(ord as u64, epoch);
                        let t = engine.submit(&vars, &plans).unwrap();
                        engine.wait(t).unwrap();
                    }
                }
                drop(engine);
                remote.mark("burn_in_done", &[]).unwrap();
                remote
            })
        })
        .collect();
    let remotes: Vec<Arc<RemoteBackend>> = threads.into_iter().map(|t| t.join().unwrap()).collect();

    // The pool root sees no un-prefixed objects: every byte written went
    // through a tenant namespace.
    let root = RemoteBackend::connect(daemon.endpoint(), None).unwrap();
    assert!(
        root.list().unwrap().is_empty(),
        "root namespace stayed empty"
    );

    // Pre-corruption snapshot of every tenant's namespace.
    let before: Vec<BTreeMap<String, Vec<u8>>> =
        remotes.iter().map(|r| objects(r.as_ref())).collect();

    // ---- Corrupt the victim's newest version, recover over the wire. ----
    let victim_ix = TENANTS.iter().position(|t| *t == VICTIM).unwrap();
    let victim = remotes[victim_ix].clone();
    let versions = list_versions(victim.as_ref()).unwrap();
    let last = *versions.last().unwrap();
    victim
        .mark("recovery_start", &[("scenario", "flipped_payload_byte")])
        .unwrap();
    let damaged = StorageScenario::FlippedPayloadByte
        .inject(victim.as_ref(), last)
        .unwrap();
    let r = RecoveryManager::new(victim.clone(), RecoveryConfig::default())
        .recover_latest()
        .unwrap();
    victim.mark("recovery_done", &[]).unwrap();

    assert_eq!(r.version, last - 1, "fallback to the previous version");
    assert_eq!(r.report.rejected_versions(), vec![last]);
    // The walk stayed inside the victim's namespace: every candidate it
    // examined is one of the victim's own committed versions.
    assert!(r.report.scanned <= versions.len());

    // The recovered image is bit-identical to the victim's blocking
    // save of that epoch.
    let (vars, plans) = tenant_state(victim_ix as u64, last - 1);
    let expected = serialize(&vars, &plans).unwrap();
    assert_eq!(r.data, expected.data, "recovered data image bit-identical");
    assert_eq!(r.aux, expected.aux, "recovered aux image bit-identical");

    // ---- Isolation: nobody else noticed. ----
    for (ix, tenant) in TENANTS.iter().enumerate() {
        let after = objects(remotes[ix].as_ref());
        if *tenant == VICTIM {
            // Only the injected object changed in the victim's own view.
            let mut expect = before[ix].clone();
            let obj = expect.get_mut(&damaged).unwrap();
            assert_ne!(&after[&damaged], obj, "injection took effect");
            obj.clone_from(&after[&damaged]);
            assert_eq!(after, expect, "victim's other objects untouched");
            continue;
        }
        assert_eq!(
            after, before[ix],
            "tenant {tenant} objects changed during another tenant's recovery"
        );
        // Every survivor recovers its own latest with nothing rejected.
        let own = RecoveryManager::new(remotes[ix].clone(), RecoveryConfig::default())
            .recover_latest()
            .unwrap();
        assert!(
            own.report.rejected.is_empty(),
            "tenant {tenant} saw rejects"
        );
        let own_versions = list_versions(remotes[ix].as_ref()).unwrap();
        assert_eq!(own.version, *own_versions.last().unwrap());
    }
    // The retention tenant really pruned (keep=2) — inside its own
    // namespace only, over the same daemon.
    let kept = list_versions(remotes[3].as_ref()).unwrap();
    assert_eq!(kept, vec![EPOCHS - 2, EPOCHS - 1], "keep=2 retention held");
    // The NPB tenant keeps everything: its epochs plus the restart
    // verification's extra checkpoint.
    assert_eq!(
        list_versions(remotes[0].as_ref()).unwrap().len(),
        EPOCHS as usize + 1,
        "unpruned tenant kept every version"
    );

    // ---- One JSONL log reconstructs every tenant's history. ----
    drop(root);
    victim.shutdown_daemon().unwrap();
    daemon.join().unwrap();
    let log = std::fs::read_to_string(&obs).unwrap();
    scrutiny_obs::validate_jsonl(&log).unwrap();
    let snap = Snapshot::from_jsonl(&log).unwrap();
    assert_eq!(snap.dropped_events, 0, "event ring kept the full history");

    // Per-tenant publish history: exactly versions 0..EPOCHS each.
    let mut published: BTreeMap<String, BTreeSet<u64>> = BTreeMap::new();
    for e in snap.events.iter().filter(|e| e.name == "scrutinyd.publish") {
        let tenant = str_field(&e.fields, "tenant").expect("publish carries tenant");
        let Some(FieldValue::U64(v)) = field(&e.fields, "version") else {
            panic!("publish carries version");
        };
        published.entry(tenant).or_default().insert(*v);
    }
    assert_eq!(
        published.keys().cloned().collect::<Vec<_>>(),
        TENANTS.iter().map(|t| t.to_string()).collect::<Vec<_>>(),
        "publish events name exactly the four tenants"
    );
    for (tenant, versions) in &published {
        // `alpha` (the NPB tenant) publishes one extra version for its
        // restart verification; everyone else publishes one per epoch —
        // including the retention tenant's later-pruned versions: the
        // log keeps the full history retention erases from storage.
        let last = if tenant == "alpha" {
            EPOCHS
        } else {
            EPOCHS - 1
        };
        let want: BTreeSet<u64> = (0..=last).collect();
        assert_eq!(
            versions, &want,
            "tenant {tenant} published versions 0..={last}"
        );
    }

    // Markers: all four burn-ins completed; recovery phases belong to
    // the victim alone.
    let marks: Vec<(String, String)> = snap
        .events
        .iter()
        .filter(|e| e.name == "scrutinyd.mark")
        .map(|e| {
            (
                str_field(&e.fields, "tenant").unwrap(),
                str_field(&e.fields, "label").unwrap(),
            )
        })
        .collect();
    for tenant in TENANTS {
        assert!(
            marks.contains(&(tenant.to_string(), "burn_in_done".to_string())),
            "tenant {tenant} burn-in marker missing"
        );
    }
    for (tenant, label) in &marks {
        if label.starts_with("recovery_") {
            assert_eq!(tenant, VICTIM, "recovery markers tagged to the victim only");
        }
    }

    // Gauges drained back to zero; the request counter saw the traffic.
    for tenant in TENANTS {
        let name = format!("scrutinyd.queue_depth.{tenant}");
        let g = snap.gauges.iter().find(|(n, _)| *n == name);
        assert_eq!(g.map(|(_, v)| *v), Some(0), "{name} returned to zero");
    }
    let reqs = snap
        .counters
        .iter()
        .find(|(n, _)| n == "scrutinyd.requests")
        .map(|(_, v)| *v)
        .unwrap_or(0);
    assert!(reqs > 0, "request counter recorded the traffic");
    let _ = std::fs::remove_dir_all(&dir);
}
