//! Bit-identity across the wire: an engine submitting through
//! `RemoteBackend` → `scrutinyd` → `DirBackend` must leave **exactly**
//! the bytes a local engine writing the same epochs directly to a
//! `DirBackend` leaves — same object names, same object bytes — on all
//! three layouts (monolithic, sharded, delta chains). The daemon is a
//! namespace and policy layer, never a rewrite layer.
//!
//! The named tests pin each layout on real directories (including the
//! raw pool files under the tenant prefix); the property test sweeps
//! layout × epochs × sizes on in-memory pools.

use proptest::prelude::*;
use scrutiny_ckpt::names::Tenant;
use scrutiny_ckpt::{Bitmap, Regions, VarData, VarPlan, VarRecord};
use scrutiny_engine::{
    DeltaPolicy, DirBackend, EngineConfig, EngineHandle, Layout, MemBackend, StorageBackend,
};
use scrutiny_obs::Recorder;
use scrutinyd::{Daemon, DaemonConfig, RemoteBackend};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::Arc;

const TENANT: &str = "mirror";

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("scrutiny_rt_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn layout_cfg(ix: usize) -> EngineConfig {
    match ix {
        0 => EngineConfig::default(),
        1 => EngineConfig {
            workers: 3,
            target_shards: 4,
            layout: Layout::Sharded,
            ..Default::default()
        },
        _ => EngineConfig {
            delta: Some(DeltaPolicy {
                page_bytes: 128,
                rebase_every: 8,
            }),
            ..Default::default()
        },
    }
}

fn epoch_state(epoch: u64, n: usize) -> (Vec<VarRecord>, Vec<VarPlan>) {
    let f: Vec<f64> = (0..n)
        .map(|j| (j as f64 * 0.07).cos() + (epoch * epoch) as f64)
        .collect();
    let vars = vec![
        VarRecord::new("u", VarData::F64(f)),
        VarRecord::new("it", VarData::I64(vec![epoch as i64])),
    ];
    let crit = Bitmap::from_fn(n, |j| j % 7 != 3);
    let plans = vec![VarPlan::Pruned(Regions::from_bitmap(&crit)), VarPlan::Full];
    (vars, plans)
}

fn run_epochs(backend: Arc<dyn StorageBackend>, cfg: EngineConfig, epochs: u64, n: usize) {
    let engine = EngineHandle::open(backend, cfg).unwrap();
    for e in 0..epochs {
        let (vars, plans) = epoch_state(e, n);
        let t = engine.submit(&vars, &plans).unwrap();
        engine.wait(t).unwrap();
    }
}

fn objects(b: &dyn StorageBackend) -> BTreeMap<String, Vec<u8>> {
    b.list()
        .unwrap()
        .into_iter()
        .map(|name| {
            let bytes = b.get(&name).unwrap();
            (name, bytes)
        })
        .collect()
}

/// The core equivalence: same epochs via the daemon and directly; the
/// tenant's remote view, and optionally the raw pool under the tenant
/// prefix, must equal the direct backend byte for byte.
fn assert_bit_identical(
    direct: Arc<dyn StorageBackend>,
    pool: Arc<dyn StorageBackend>,
    layout: usize,
    epochs: u64,
    n: usize,
) {
    run_epochs(direct.clone(), layout_cfg(layout), epochs, n);

    let daemon = Daemon::spawn_tcp(
        "127.0.0.1:0",
        pool.clone(),
        DaemonConfig {
            recorder: Recorder::new(),
            ..DaemonConfig::default()
        },
    )
    .unwrap();
    let remote = Arc::new(
        RemoteBackend::connect(daemon.endpoint(), Some(Tenant::new(TENANT).unwrap())).unwrap(),
    );
    run_epochs(remote.clone(), layout_cfg(layout), epochs, n);

    let want = objects(direct.as_ref());
    assert!(!want.is_empty(), "direct engine produced objects");
    assert_eq!(
        objects(remote.as_ref()),
        want,
        "tenant view ≠ direct backend (layout {layout}, {epochs} epochs)"
    );
    // The pool holds the same bytes under the tenant prefix and nothing
    // else.
    let pooled = objects(pool.as_ref());
    let reprefixed: BTreeMap<String, Vec<u8>> = want
        .iter()
        .map(|(k, v)| (format!("{TENANT}/{k}"), v.clone()))
        .collect();
    assert_eq!(pooled, reprefixed, "raw pool ≠ prefixed direct objects");
    daemon.join().unwrap();
}

#[test]
fn monolithic_layout_is_bit_identical_over_the_wire() {
    let dir = scratch("mono");
    assert_bit_identical(
        Arc::new(DirBackend::open(dir.join("direct")).unwrap()),
        Arc::new(DirBackend::open(dir.join("pool")).unwrap()),
        0,
        3,
        400,
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sharded_layout_is_bit_identical_over_the_wire() {
    let dir = scratch("shard");
    assert_bit_identical(
        Arc::new(DirBackend::open(dir.join("direct")).unwrap()),
        Arc::new(DirBackend::open(dir.join("pool")).unwrap()),
        1,
        3,
        400,
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn delta_chain_layout_is_bit_identical_over_the_wire() {
    let dir = scratch("delta");
    assert_bit_identical(
        Arc::new(DirBackend::open(dir.join("direct")).unwrap()),
        Arc::new(DirBackend::open(dir.join("pool")).unwrap()),
        2,
        4,
        400,
    );
    let _ = std::fs::remove_dir_all(&dir);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Any layout, any small epoch count, any payload size: the daemon
    /// path and the direct path are indistinguishable at the byte level.
    #[test]
    fn remote_storage_is_bit_identical_to_direct(
        layout in 0usize..3,
        epochs in 2u64..5,
        n in 64usize..256,
    ) {
        assert_bit_identical(
            Arc::new(MemBackend::new()),
            Arc::new(MemBackend::new()),
            layout,
            epochs,
            n,
        );
    }
}
