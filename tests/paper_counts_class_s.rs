//! Regression tests pinning the paper's Table II numbers at class S.
//! (FT is exercised by `gen_table2`; its 26M-node tape is too heavy for
//! the default test profile, so it is `#[ignore]`d here.)

use scrutiny_core::scrutinize;
use scrutiny_npb::{Bt, Cg, Ft, Lu, Mg, Sp};

#[test]
fn bt_class_s_counts() {
    let r = scrutinize(&Bt::class_s()).unwrap();
    let u = r.var("u").unwrap();
    assert_eq!((u.uncritical(), u.total()), (1_500, 10_140));
}

#[test]
fn sp_class_s_counts() {
    let r = scrutinize(&Sp::class_s()).unwrap();
    let u = r.var("u").unwrap();
    assert_eq!((u.uncritical(), u.total()), (1_500, 10_140));
}

#[test]
fn cg_class_s_counts() {
    let r = scrutinize(&Cg::class_s()).unwrap();
    let x = r.var("x").unwrap();
    assert_eq!((x.uncritical(), x.total()), (2, 1_402));
}

#[test]
fn lu_class_s_counts() {
    let r = scrutinize(&Lu::class_s()).unwrap();
    assert_eq!(r.var("u").unwrap().uncritical(), 1_628);
    assert_eq!(r.var("rho_i").unwrap().uncritical(), 300);
    assert_eq!(r.var("qs").unwrap().uncritical(), 300);
    assert_eq!(r.var("rsd").unwrap().uncritical(), 1_500);
}

#[test]
fn mg_class_s_counts() {
    let r = scrutinize(&Mg::class_s()).unwrap();
    let u = r.var("u").unwrap();
    let rr = r.var("r").unwrap();
    assert_eq!((u.uncritical(), u.total()), (7_176, 46_480));
    assert_eq!((rr.uncritical(), rr.total()), (10_543, 46_480));
}

#[test]
#[ignore = "26M-node tape; run explicitly or via gen_table2"]
fn ft_class_s_counts() {
    let r = scrutinize(&Ft::class_s()).unwrap();
    let y = r.var("y").unwrap();
    assert_eq!((y.uncritical(), y.total()), (4_096, 266_240));
}
